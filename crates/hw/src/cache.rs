//! Two-level data-cache model with per-line speculative read/write bits.
//!
//! Exactly the paper's §3.3 implementation sketch: "the data cache retains
//! the data footprint of the atomic region ... Each cache line is extended
//! with two bits for tracking which addresses have been read and written in
//! the atomic region. These addresses are exposed to the coherency mechanism
//! to observe invalidations. Flash clear operations are used to commit
//! and/or abort speculative state." Evicting a speculatively-accessed line
//! overflows the region (best-effort hardware → abort).
//!
//! The flash clear itself is modeled the way real hardware builds it: the
//! speculative R/W "bits" are epoch tags compared against a region epoch, so
//! a commit clears every line's speculative state by bumping one counter —
//! O(1), like the single wired clear line it models — instead of sweeping
//! the array. Aborts still sweep, but only to invalidate speculatively
//! written lines, and aborts are the rare case.

use crate::config::HwConfig;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 unified cache hit.
    L2,
    /// Miss to memory.
    Memory,
}

/// Epoch value meaning "bit never set" (no region epoch ever matches it).
const NEVER: u64 = 0;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    lru: u64,
    /// Region epoch in which this line was last speculatively read; the
    /// read bit is "set" iff this equals the cache's current epoch.
    spec_read_epoch: u64,
    /// Region epoch in which this line was last speculatively written.
    spec_write_epoch: u64,
}

impl Default for Line {
    fn default() -> Self {
        Line {
            tag: 0,
            valid: false,
            lru: 0,
            spec_read_epoch: NEVER,
            spec_write_epoch: NEVER,
        }
    }
}

impl Line {
    fn spec(&self, epoch: u64) -> bool {
        self.spec_read_epoch == epoch || self.spec_write_epoch == epoch
    }
}

#[derive(Debug, Clone)]
struct Level {
    sets: u64,
    ways: u64,
    lines: Vec<Line>,
    tick: u64,
}

impl Level {
    fn new(sets: u64, ways: u64) -> Self {
        Level {
            sets,
            ways,
            lines: vec![Line::default(); (sets * ways) as usize],
            tick: 0,
        }
    }

    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = (line_addr % self.sets) as usize;
        let w = self.ways as usize;
        set * w..(set + 1) * w
    }

    fn lookup(&mut self, line_addr: u64) -> Option<usize> {
        self.tick += 1;
        let tick = self.tick;
        let r = self.set_range(line_addr);
        for i in r {
            if self.lines[i].valid && self.lines[i].tag == line_addr {
                self.lines[i].lru = tick;
                return Some(i);
            }
        }
        None
    }

    /// Installs a line, returning the evicted line if it had speculative
    /// bits set (overflow signal); prefers evicting non-speculative lines.
    fn install(&mut self, line_addr: u64, epoch: u64) -> (usize, bool) {
        self.tick += 1;
        let r = self.set_range(line_addr);
        // Choose victim: invalid > non-speculative LRU > speculative LRU.
        let mut victim = r.start;
        let mut best = (2u8, u64::MAX); // (class, lru)
        for i in r {
            let l = &self.lines[i];
            let class = if !l.valid {
                0
            } else if !l.spec(epoch) {
                1
            } else {
                2
            };
            if (class, l.lru) < best {
                best = (class, l.lru);
                victim = i;
            }
        }
        let overflow = self.lines[victim].valid && self.lines[victim].spec(epoch);
        self.lines[victim] = Line {
            tag: line_addr,
            valid: true,
            lru: self.tick,
            spec_read_epoch: NEVER,
            spec_write_epoch: NEVER,
        };
        (victim, overflow)
    }
}

/// The simulated cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    line_bytes: u64,
    /// Current region epoch; starts above [`NEVER`] so default lines are
    /// never speculative.
    epoch: u64,
}

impl CacheSim {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &HwConfig) -> Self {
        CacheSim {
            l1: Level::new(cfg.l1_sets(), cfg.l1_ways),
            l2: Level::new(cfg.l2_sets(), cfg.l2_ways),
            line_bytes: cfg.line_bytes,
            epoch: NEVER + 1,
        }
    }

    /// The cache line index of a byte address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    /// Performs an access. When `speculative` (inside an atomic region) the
    /// touched L1 line's read/write bit is set. Returns the servicing level
    /// and whether installing the line evicted speculative state (region
    /// overflow — the caller must abort).
    pub fn access(&mut self, addr: u64, write: bool, speculative: bool) -> (HitLevel, bool) {
        let line = self.line_of(addr);
        let (level, idx, overflow) = match self.l1.lookup(line) {
            Some(i) => (HitLevel::L1, i, false),
            None => {
                let level = if self.l2.lookup(line).is_some() {
                    HitLevel::L2
                } else {
                    self.l2.install(line, NEVER);
                    HitLevel::Memory
                };
                let (i, ovf) = self.l1.install(line, self.epoch);
                (level, i, ovf)
            }
        };
        if speculative {
            if write {
                self.l1.lines[idx].spec_write_epoch = self.epoch;
            } else {
                self.l1.lines[idx].spec_read_epoch = self.epoch;
            }
        }
        (level, overflow)
    }

    /// Commits the current region: flash-clears all speculative bits (a
    /// single epoch bump — the O(1) wired clear the paper describes).
    pub fn commit_region(&mut self) {
        self.epoch += 1;
    }

    /// Aborts the current region: speculatively-written lines are
    /// invalidated (their data is rolled back architecturally by the undo
    /// log); read bits are flash-cleared.
    pub fn abort_region(&mut self) {
        for l in &mut self.l1.lines {
            if l.spec_write_epoch == self.epoch {
                l.valid = false;
            }
        }
        self.epoch += 1;
    }

    /// Number of L1 lines currently holding speculative state.
    pub fn spec_lines(&self) -> usize {
        self.l1
            .lines
            .iter()
            .filter(|l| l.valid && l.spec(self.epoch))
            .count()
    }

    /// An external coherence invalidation for `addr`. Returns `true` if it
    /// hit a line in the current region's read or write set (conflict —
    /// the caller must abort the region).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let r = self.l1.set_range(line);
        for i in r {
            let l = &mut self.l1.lines[i];
            if l.valid && l.tag == line {
                let conflict = l.spec(self.epoch);
                l.valid = false;
                l.spec_read_epoch = NEVER;
                l.spec_write_epoch = NEVER;
                return conflict;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CacheSim {
        CacheSim::new(&HwConfig::baseline())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = sim();
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::Memory);
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::L1);
        assert_eq!(c.access(0x1008, false, false).0, HitLevel::L1, "same line");
        assert_eq!(
            c.access(0x1040, false, false).0,
            HitLevel::Memory,
            "next line"
        );
    }

    #[test]
    fn l2_backstop() {
        let mut c = sim();
        c.access(0x1000, false, false);
        // Evict from L1 by filling its set (128 sets * 64B = 8KB stride).
        for k in 1..=4 {
            c.access(0x1000 + k * 8192, false, false);
        }
        // 0x1000 evicted from L1 but still in L2.
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::L2);
    }

    #[test]
    fn speculative_bits_and_commit() {
        let mut c = sim();
        c.access(0x2000, false, true);
        c.access(0x3000, true, true);
        assert_eq!(c.spec_lines(), 2);
        c.commit_region();
        assert_eq!(c.spec_lines(), 0);
        // Data survives commit.
        assert_eq!(c.access(0x2000, false, false).0, HitLevel::L1);
    }

    #[test]
    fn abort_invalidates_written_lines_only() {
        let mut c = sim();
        c.access(0x2000, false, true); // read set
        c.access(0x3000, true, true); // write set
        c.abort_region();
        assert_eq!(c.spec_lines(), 0);
        assert_eq!(
            c.access(0x2000, false, false).0,
            HitLevel::L1,
            "read line survives"
        );
        assert_ne!(
            c.access(0x3000, false, false).0,
            HitLevel::L1,
            "written line invalidated"
        );
    }

    #[test]
    fn overflow_when_set_full_of_speculative_lines() {
        let mut c = sim();
        // Fill one L1 set (4 ways) with speculative lines; the 5th evicts one.
        for k in 0..4u64 {
            let (_, ovf) = c.access(0x1000 + k * 8192, true, true);
            assert!(!ovf);
        }
        let (_, ovf) = c.access(0x1000 + 4 * 8192, true, true);
        assert!(ovf, "fifth speculative line in a 4-way set overflows");
    }

    #[test]
    fn conflict_detection() {
        let mut c = sim();
        c.access(0x5000, false, true);
        assert!(
            c.invalidate(0x5008),
            "invalidation of read-set line conflicts"
        );
        assert!(!c.invalidate(0x9000), "unrelated line: no conflict");
        c.access(0x6000, false, false);
        c.commit_region();
        assert!(!c.invalidate(0x6000), "non-speculative line: no conflict");
    }

    #[test]
    fn epoch_clear_does_not_leak_stale_bits_across_regions() {
        let mut c = sim();
        // Region 1 touches a line speculatively, commits.
        c.access(0x7000, true, true);
        c.commit_region();
        assert_eq!(c.spec_lines(), 0);
        // Region 2 re-touches the same line non-speculatively: still clean.
        c.access(0x7000, false, false);
        assert_eq!(c.spec_lines(), 0);
        // A conflict probe on it must not see region 1's stale write bit.
        assert!(!c.invalidate(0x7000));
        // Region 3: the line is speculative again only once re-marked.
        c.access(0x8000, false, true);
        c.abort_region();
        c.access(0x8000, false, true);
        assert_eq!(c.spec_lines(), 1);
    }
}
