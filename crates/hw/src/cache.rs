//! Two-level data-cache model with per-line speculative read/write bits.
//!
//! Exactly the paper's §3.3 implementation sketch: "the data cache retains
//! the data footprint of the atomic region ... Each cache line is extended
//! with two bits for tracking which addresses have been read and written in
//! the atomic region. These addresses are exposed to the coherency mechanism
//! to observe invalidations. Flash clear operations are used to commit
//! and/or abort speculative state." Evicting a speculatively-accessed line
//! overflows the region (best-effort hardware → abort).
//!
//! The flash clear itself is modeled the way real hardware builds it: the
//! speculative R/W "bits" are epoch tags compared against a region epoch, so
//! a commit clears every line's speculative state by bumping one counter —
//! O(1), like the single wired clear line it models — instead of sweeping
//! the array. Aborts still sweep, but only to invalidate speculatively
//! written lines, and aborts are the rare case.

use crate::config::HwConfig;
use crate::stats::PredStats;

/// The "no predictor slot" site id: passed for accesses that have no sealed
/// memory-uop identity (alloc header writes, fallback-lock probes, per-uop
/// interpreter paths without sealed code) and stored in
/// `SbInfo::mem_site` for non-memory pcs. The way predictor skips these.
pub const NO_SITE: u32 = u32::MAX;

/// Branch-target side-cache size (power of two, direct-mapped).
const BTB_ENTRIES: usize = 512;

/// A direct-mapped branch-target side-cache for `JmpInd` tables and
/// `CallVirt` vtable walks, keyed by (site, dynamic selector). Both lookups
/// it short-circuits are pure functions of that pair — a switch table is
/// immutable and a class's vtable slot never changes — so hits are
/// semantically transparent; monomorphic sites skip the table walk entirely.
#[derive(Debug)]
pub struct TargetCache {
    entries: Vec<BtbEntry>,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    site: u64,
    key: i64,
    target: usize,
}

impl Default for TargetCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TargetCache {
    /// Creates an empty side-cache.
    pub fn new() -> Self {
        TargetCache {
            // `site: u64::MAX` never collides with a real pc hash (method
            // ids are 32-bit), so it doubles as the empty sentinel.
            entries: vec![
                BtbEntry {
                    site: u64::MAX,
                    key: 0,
                    target: 0,
                };
                BTB_ENTRIES
            ],
        }
    }

    /// The memoized target for `(site, key)`, if the entry is live. The
    /// sentinel site is rejected explicitly, so even a probe with
    /// `u64::MAX` (which no real pc hash produces) cannot match an empty
    /// entry.
    #[inline]
    pub fn lookup(&self, site: u64, key: i64) -> Option<usize> {
        let e = &self.entries[(site as usize) & (BTB_ENTRIES - 1)];
        (e.site == site && e.key == key && site != u64::MAX).then_some(e.target)
    }

    /// Installs (or replaces) the direct-mapped entry for `(site, key)`.
    #[inline]
    pub fn insert(&mut self, site: u64, key: i64, target: usize) {
        self.entries[(site as usize) & (BTB_ENTRIES - 1)] = BtbEntry { site, key, target };
    }

    /// Flash-invalidates every entry, restoring construction state in place
    /// (allocation reused — the cross-request reset path).
    pub fn reset(&mut self) {
        self.entries.fill(BtbEntry {
            site: u64::MAX,
            key: 0,
            target: 0,
        });
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// L1 data cache hit.
    L1,
    /// L2 unified cache hit.
    L2,
    /// Miss to memory.
    Memory,
}

/// Epoch value meaning "bit never set" (no region epoch ever matches it).
const NEVER: u64 = 0;

/// Tag value meaning "line invalid". Real tags are line indices
/// (`addr >> log2(line_bytes)`), which cannot reach `u64::MAX`, so validity
/// folds into the tag word and the hit-path scan is a single array sweep.
const TAG_INVALID: u64 = u64::MAX;

/// One cache level, struct-of-arrays: the per-access tag scan touches one
/// contiguous `ways`-sized window of `tags` (a single hardware cache line
/// for any sane associativity) instead of striding across fat line records;
/// LRU ages and speculative epochs live in parallel arrays touched only on
/// a hit index or an install.
#[derive(Debug, Clone, PartialEq)]
struct Level {
    sets: u64,
    ways: u64,
    /// `sets - 1` when the set count is a power of two (every shipped
    /// config), letting the per-access set index be a mask instead of a
    /// hardware `div` — this runs on every simulated memory uop.
    set_mask: Option<u64>,
    tags: Vec<u64>,
    lru: Vec<u64>,
    /// Region epoch in which each line was last speculatively read; the
    /// read bit is "set" iff this equals the cache's current epoch.
    spec_read_epoch: Vec<u64>,
    /// Region epoch in which each line was last speculatively written.
    spec_write_epoch: Vec<u64>,
    tick: u64,
}

impl Level {
    fn new(sets: u64, ways: u64) -> Self {
        let n = (sets * ways) as usize;
        Level {
            sets,
            ways,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            tags: vec![TAG_INVALID; n],
            lru: vec![0; n],
            spec_read_epoch: vec![NEVER; n],
            spec_write_epoch: vec![NEVER; n],
            tick: 0,
        }
    }

    fn spec(&self, i: usize, epoch: u64) -> bool {
        self.spec_read_epoch[i] == epoch || self.spec_write_epoch[i] == epoch
    }

    /// Restores construction state in place, reusing the allocations.
    fn reset(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.lru.fill(0);
        self.spec_read_epoch.fill(NEVER);
        self.spec_write_epoch.fill(NEVER);
        self.tick = 0;
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = match self.set_mask {
            Some(m) => (line_addr & m) as usize,
            None => (line_addr % self.sets) as usize,
        };
        let w = self.ways as usize;
        set * w..(set + 1) * w
    }

    /// Fixed-arity tag-compare window: with the way count a const generic
    /// the sweep unrolls into straight-line compare/select code over a
    /// `[u64; W]`, which the host can turn into one or two vector compares
    /// for the shipped associativities. Returns the in-set way index of the
    /// matching tag, or `usize::MAX`.
    #[inline(always)]
    fn scan_fixed<const W: usize>(win: &[u64; W], line_addr: u64) -> usize {
        let mut hit = usize::MAX;
        for (k, &t) in win.iter().enumerate() {
            if t == line_addr {
                hit = k;
            }
        }
        hit
    }

    #[inline]
    fn lookup(&mut self, line_addr: u64) -> Option<usize> {
        self.tick += 1;
        let r = self.set_range(line_addr);
        let base = r.start;
        // Branchless scan: sweep the whole (tiny) set instead of exiting at
        // the first match. An early-exit loop leaves at a data-dependent
        // iteration, which costs the *host* a branch mispredict on nearly
        // every simulated access; the fixed-trip select compiles to
        // straight-line compare/cmov code. A tag match implies validity: no
        // real line is `TAG_INVALID`. The shipped associativities (2/4/8)
        // dispatch to monomorphized fixed-arity windows; anything else takes
        // the generic runtime-trip sweep.
        let hit = match self.ways {
            2 => Self::scan_fixed::<2>(
                self.tags[base..base + 2].try_into().expect("2-way window"),
                line_addr,
            ),
            4 => Self::scan_fixed::<4>(
                self.tags[base..base + 4].try_into().expect("4-way window"),
                line_addr,
            ),
            8 => Self::scan_fixed::<8>(
                self.tags[base..base + 8].try_into().expect("8-way window"),
                line_addr,
            ),
            _ => {
                let mut h = usize::MAX;
                for (k, &t) in self.tags[r].iter().enumerate() {
                    if t == line_addr {
                        h = k;
                    }
                }
                h
            }
        };
        if hit != usize::MAX {
            let i = base + hit;
            self.lru[i] = self.tick;
            return Some(i);
        }
        None
    }

    /// Installs a line, returning the evicted line if it had speculative
    /// bits set (overflow signal); prefers evicting non-speculative lines.
    fn install(&mut self, line_addr: u64, epoch: u64) -> (usize, bool) {
        self.tick += 1;
        let r = self.set_range(line_addr);
        // Choose victim: invalid > non-speculative LRU > speculative LRU.
        let mut victim = r.start;
        let mut best = (2u8, u64::MAX); // (class, lru)
        for i in r {
            let class = if self.tags[i] == TAG_INVALID {
                0
            } else if !self.spec(i, epoch) {
                1
            } else {
                2
            };
            if (class, self.lru[i]) < best {
                best = (class, self.lru[i]);
                victim = i;
            }
        }
        let overflow = self.tags[victim] != TAG_INVALID && self.spec(victim, epoch);
        self.tags[victim] = line_addr;
        self.lru[victim] = self.tick;
        self.spec_read_epoch[victim] = NEVER;
        self.spec_write_epoch[victim] = NEVER;
        (victim, overflow)
    }
}

/// One seal-site way-predictor entry: the last `(line, L1 way slot)` the
/// owning memory-uop site resolved through the full path. `line ==
/// TAG_INVALID` means never trained. Entries are *hints*, never trusted:
/// every consult validates the cached slot against the live L1 tag array,
/// so stale entries (evicted, invalidated, aborted-away lines) degrade to
/// mispredicts, not wrong answers.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PredEntry {
    line: u64,
    idx: u32,
}

const PRED_EMPTY: PredEntry = PredEntry {
    line: TAG_INVALID,
    idx: 0,
};

/// Outcome of the sited fast path ([`CacheSim::fast_hit`]): both variants
/// are validated L1 hits that skipped the set scan and install path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastHit {
    /// Fully absorbed: the line is resident *and* its current-epoch
    /// speculative bits already cover this access kind, so the region
    /// footprint recorded the line earlier — no footprint or budget work
    /// remains for the caller.
    Absorbed,
    /// Validated residency, but this access may be the line's first touch
    /// in the current region: an in-region caller must still record the
    /// line in the region footprint and re-check the injected line budget.
    Resident,
}

/// The simulated cache hierarchy, fronted by a one-entry MRU line filter
/// and a per-seal-site way predictor.
///
/// The filter (`DESIGN.md` §12) memoizes the last L1-resident line touched:
/// a repeat access to it skips the set scan, the LRU bump, and the install
/// path entirely — the dominant pattern in field/array-heavy workloads is
/// runs of accesses to one object's line. The way predictor (`DESIGN.md`
/// §16) generalizes the same idea from one global entry to one entry per
/// sealed memory-uop site, catching the loop pattern the filter cannot:
/// alternating accesses where each *site* is line-stable but consecutive
/// accesses are not. Two invariants make both invisible:
///
/// * **Validity.** The filter entry `(mru_line, mru_idx)` is live only
///   while `mru_epoch == epoch`. Commit and abort bump the epoch (the same
///   flash clear that wipes the speculative bits), and `invalidate` disarms
///   it explicitly, so the filter can never claim residency for a line the
///   hierarchy no longer holds: between two full-path accesses nothing else
///   can evict an L1 line. Predictor entries carry no epoch at all —
///   instead every consult re-validates `tags[idx] == line` against the
///   live array, which is exact: tags store full line indices, so a match
///   proves the line is resident at that slot *right now*, whatever
///   evictions, aborts, or invalidations happened since training.
/// * **Deferred LRU.** Fast-path hits do not bump the line's recency
///   immediately; one bump per collapsed same-way run is flushed in access
///   order (`pend_idx`/`pend`, flushed before any full-path access, tag
///   mutation, or a fast hit on a *different* way). Victim selection
///   compares only *relative* `(class, lru)` order within a set, so
///   collapsing a same-way run's bumps to its final tick preserves every
///   victim choice — hence residency, hit levels, and overflow signals —
///   bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    line_bytes: u64,
    /// `log2(line_bytes)` when the line size is a power of two, so the
    /// per-access line index is a shift instead of a hardware `div`.
    line_shift: Option<u32>,
    /// Current region epoch; starts above [`NEVER`] so default lines are
    /// never speculative.
    epoch: u64,
    /// MRU-filter line index ([`TAG_INVALID`] disarms; never armed when the
    /// filter is configured off).
    mru_line: u64,
    /// The armed line's way slot in L1 (valid only while the entry is live).
    mru_idx: usize,
    /// Epoch at arming: the entry is live iff this equals `epoch`, so every
    /// commit/abort flash-clears the filter for free.
    mru_epoch: u64,
    /// The L1 way slot owed a deferred LRU bump when `pend` is set (one
    /// collapsed run of fast-path hits; see the struct docs).
    pend_idx: usize,
    /// Whether a deferred bump is pending for `pend_idx`.
    pend: bool,
    /// `HwConfig::mem_filter` — `false` forces the unfiltered reference
    /// path for the equivalence gates.
    filter: bool,
    /// `HwConfig::way_predict` — `false` disables the per-site predictor
    /// (the `unpredicted()` reference leg).
    way_predict: bool,
    /// Per-site predictor entries, indexed by global seal-site id and grown
    /// on demand at training time.
    pred: Vec<PredEntry>,
    /// Predictor consult/hit/mispredict counters (kept out of `RunStats` —
    /// see [`PredStats`]).
    pred_stats: PredStats,
    /// O(1)-maintained count of L1 lines holding current-epoch speculative
    /// state (replaces the O(sets×ways) scan the validator used to pay on
    /// every commit/abort).
    spec_count: u32,
    /// Construction-time-precomputed extra contention cycles charged per L2
    /// hit — `(l2_latency - l1_latency) / mlp * width`, the exact integer
    /// the per-access path computes (with two hardware divides) on every
    /// miss. The batched accounting path multiplies this by the block's L2
    /// tally once per superblock instead.
    pub(crate) l2_extra_cxw: u64,
    /// As [`Self::l2_extra_cxw`] for misses to memory:
    /// `(mem_latency - l1_latency) / mlp * width`.
    pub(crate) mem_extra_cxw: u64,
}

impl CacheSim {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &HwConfig) -> Self {
        let mut sim = CacheSim {
            l1: Level::new(cfg.l1_sets(), cfg.l1_ways),
            l2: Level::new(cfg.l2_sets(), cfg.l2_ways),
            line_bytes: 0,
            line_shift: None,
            epoch: 0,
            mru_line: 0,
            mru_idx: 0,
            mru_epoch: 0,
            pend_idx: 0,
            pend: false,
            filter: false,
            way_predict: false,
            pred: Vec::new(),
            pred_stats: PredStats::default(),
            spec_count: 0,
            l2_extra_cxw: 0,
            mem_extra_cxw: 0,
        };
        sim.init_scalars(cfg);
        sim
    }

    /// Initializes every non-array field to its construction value for
    /// `cfg` — the single source shared by [`CacheSim::new`] and
    /// [`CacheSim::reset`], so the two can never drift field-by-field.
    fn init_scalars(&mut self, cfg: &HwConfig) {
        self.line_bytes = cfg.line_bytes;
        self.line_shift = cfg
            .line_bytes
            .is_power_of_two()
            .then(|| cfg.line_bytes.trailing_zeros());
        self.epoch = NEVER + 1;
        self.mru_line = TAG_INVALID;
        self.mru_idx = 0;
        self.mru_epoch = NEVER;
        self.pend_idx = 0;
        self.pend = false;
        self.filter = cfg.mem_filter;
        self.way_predict = cfg.way_predict;
        self.pred_stats = PredStats::default();
        self.spec_count = 0;
        self.l2_extra_cxw = (cfg.l2_latency - cfg.l1_latency) / cfg.mlp * cfg.width;
        self.mem_extra_cxw = (cfg.mem_latency - cfg.l1_latency) / cfg.mlp * cfg.width;
    }

    /// Restores the hierarchy to the state [`CacheSim::new`] would build
    /// for `cfg`. When the geometry matches the current one, every array is
    /// cleared in place (the allocations — megabytes for an L2 — are the
    /// whole point of recycling a simulator across service requests);
    /// otherwise the hierarchy is rebuilt. Either way the result is
    /// bit-identical to a freshly constructed simulator (debug-asserted).
    pub fn reset(&mut self, cfg: &HwConfig) {
        let same_geometry = self.l1.sets == cfg.l1_sets()
            && self.l1.ways == cfg.l1_ways
            && self.l2.sets == cfg.l2_sets()
            && self.l2.ways == cfg.l2_ways
            && self.line_bytes == cfg.line_bytes;
        if same_geometry {
            self.l1.reset();
            self.l2.reset();
            self.pred.clear();
            self.init_scalars(cfg);
        } else {
            *self = CacheSim::new(cfg);
        }
        debug_assert_eq!(
            *self,
            CacheSim::new(cfg),
            "in-place reset diverged from a fresh simulator"
        );
    }

    /// Whether the MRU line filter currently holds a live entry — must be
    /// `false` between requests (the cross-request isolation check).
    pub fn mru_armed(&self) -> bool {
        self.mru_line != TAG_INVALID && self.mru_epoch == self.epoch
    }

    /// Whether any seal-site predictor entry is trained — must be `false`
    /// between requests (the cross-request isolation check; a stale entry
    /// is harmless for correctness but would leak timing-irrelevant state
    /// across tenants).
    pub fn pred_trained(&self) -> bool {
        self.pred.iter().any(|e| e.line != TAG_INVALID)
    }

    /// The way predictor's consult/hit/mispredict counters.
    pub fn pred_stats(&self) -> PredStats {
        self.pred_stats
    }

    /// The cache line index of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.line_bytes,
        }
    }

    /// Marks the current epoch's speculative bit on L1 way `idx`,
    /// maintaining the O(1) speculative-line counter (a line is counted
    /// once however many bits it accumulates).
    #[inline]
    fn mark_spec(&mut self, idx: usize, write: bool) {
        if !self.l1.spec(idx, self.epoch) {
            self.spec_count += 1;
        }
        if write {
            self.l1.spec_write_epoch[idx] = self.epoch;
        } else {
            self.l1.spec_read_epoch[idx] = self.epoch;
        }
    }

    /// Defers the LRU bump of a fast-path hit on L1 way `idx`. At most one
    /// bump is ever pending: deferring a *different* way first flushes the
    /// pending one, so applied bumps keep access order with each same-way
    /// run collapsed to its final tick — exactly the relative recency a
    /// bump-every-time reference produces (victim selection compares only
    /// relative `(class, lru)` order, never tick magnitudes).
    #[inline]
    fn defer_bump(&mut self, idx: usize) {
        if self.pend && self.pend_idx != idx {
            self.l1.tick += 1;
            self.l1.lru[self.pend_idx] = self.l1.tick;
        }
        self.pend_idx = idx;
        self.pend = true;
    }

    /// Applies the pending deferred bump, if any: the collapsed run's way
    /// receives the run's *final* tick, exactly as if only the last of its
    /// accesses had gone through [`Level::lookup`]. Called before any
    /// full-path access or tag mutation, while the pending way still holds
    /// the line the run touched (nothing can evict an L1 line in between).
    #[inline]
    fn flush_pending(&mut self) {
        if self.pend {
            self.l1.tick += 1;
            self.l1.lru[self.pend_idx] = self.l1.tick;
            self.pend = false;
        }
    }

    /// The zero-cost tier of [`CacheSim::access`], for callers that batch
    /// their own statistics: `true` iff `addr` is a repeat of the armed MRU
    /// line whose effects are fully absorbed — an L1 hit on a resident line
    /// with (when `speculative`) a speculative bit already covering this
    /// access kind, so *no* residency, LRU-order, speculative, footprint,
    /// or overflow state can change. A write is absorbed only if the write
    /// bit is already set; a read also when only the write bit is set (the
    /// skipped read bit is unobservable: every consumer tests read-or-write,
    /// and the write bit can only be cleared by the same flash clears).
    #[inline(always)]
    pub fn absorbed(&self, addr: u64, write: bool, speculative: bool) -> bool {
        let line = self.line_of(addr);
        line == self.mru_line
            && self.mru_epoch == self.epoch
            && (!speculative
                || self.l1.spec_write_epoch[self.mru_idx] == self.epoch
                || (!write && self.l1.spec_read_epoch[self.mru_idx] == self.epoch))
    }

    /// The sited fast path, consulted *before* [`CacheSim::access_sited`]:
    /// `Some` iff the access is a validated L1 hit that skipped the set
    /// scan, install path, and immediate LRU bump (the bump is deferred).
    /// Two tiers:
    ///
    /// 1. **MRU filter** — repeat of the armed line whose current-epoch
    ///    speculative bits already cover this access kind: nothing at all
    ///    can change, so the hit is [`FastHit::Absorbed`].
    /// 2. **Way predictor** — `site`'s cached `(line, way)` entry names
    ///    this line and validation against the live L1 tag array confirms
    ///    residency at that slot. Speculative bits are marked as usual; the
    ///    hit is `Absorbed` only when the pre-existing bits already covered
    ///    the access (otherwise [`FastHit::Resident`], and an in-region
    ///    caller still owes the footprint/budget bookkeeping).
    ///
    /// `None` (cold site, different line, failed validation, predictor off)
    /// means the caller must take the full path, which retrains the site.
    #[inline]
    pub fn fast_hit(
        &mut self,
        site: u32,
        addr: u64,
        write: bool,
        speculative: bool,
    ) -> Option<FastHit> {
        let line = self.line_of(addr);
        if line == self.mru_line
            && self.mru_epoch == self.epoch
            && (!speculative
                || self.l1.spec_write_epoch[self.mru_idx] == self.epoch
                || (!write && self.l1.spec_read_epoch[self.mru_idx] == self.epoch))
        {
            self.defer_bump(self.mru_idx);
            return Some(FastHit::Absorbed);
        }
        if !self.way_predict || site == NO_SITE {
            return None;
        }
        let e = *self.pred.get(site as usize).unwrap_or(&PRED_EMPTY);
        self.pred_stats.probes += 1;
        if e.line != line {
            // Never trained, or trained for another line: a plain miss.
            return None;
        }
        let idx = e.idx as usize;
        if self.l1.tags[idx] != line {
            // The line left that slot since training (eviction, abort
            // invalidation, coherence): deoptimize to the full path.
            self.pred_stats.mispredicts += 1;
            return None;
        }
        self.pred_stats.hits += 1;
        // Coverage is decided on the bits as they were *before* this access
        // marks them — the same condition `absorbed` tests.
        let covered = !speculative
            || self.l1.spec_write_epoch[idx] == self.epoch
            || (!write && self.l1.spec_read_epoch[idx] == self.epoch);
        if speculative {
            self.mark_spec(idx, write);
        }
        self.defer_bump(idx);
        Some(if covered {
            FastHit::Absorbed
        } else {
            FastHit::Resident
        })
    }

    /// Records `site`'s full-path resolution `(line, way)` in its predictor
    /// entry, growing the table on first sight of a site.
    #[inline]
    fn train(&mut self, site: u32, line: u64, idx: usize) {
        if !self.way_predict || site == NO_SITE {
            return;
        }
        let s = site as usize;
        if s >= self.pred.len() {
            self.pred.resize(s + 1, PRED_EMPTY);
        }
        self.pred[s] = PredEntry {
            line,
            idx: idx as u32,
        };
    }

    /// Performs an access. When `speculative` (inside an atomic region) the
    /// touched L1 line's read/write bit is set. Returns the servicing level
    /// and whether installing the line evicted speculative state (region
    /// overflow — the caller must abort).
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool, speculative: bool) -> (HitLevel, bool) {
        self.access_sited(NO_SITE, addr, write, speculative)
    }

    /// [`CacheSim::access`] with a seal-site identity: the full path, which
    /// additionally retrains `site`'s predictor entry with the L1 slot the
    /// access resolved to. `NO_SITE` trains nothing.
    #[inline]
    pub fn access_sited(
        &mut self,
        site: u32,
        addr: u64,
        write: bool,
        speculative: bool,
    ) -> (HitLevel, bool) {
        let line = self.line_of(addr);
        // MRU filter hit: the line is L1-resident at `mru_idx` (nothing can
        // have evicted it since arming), so the set scan, LRU bump, and
        // install path are all skipped; the recency bump is deferred.
        if line == self.mru_line && self.mru_epoch == self.epoch {
            self.defer_bump(self.mru_idx);
            if speculative {
                self.mark_spec(self.mru_idx, write);
            }
            self.train(site, line, self.mru_idx);
            return (HitLevel::L1, false);
        }
        self.flush_pending();
        let (level, idx, overflow) = match self.l1.lookup(line) {
            Some(i) => (HitLevel::L1, i, false),
            None => {
                let level = if self.l2.lookup(line).is_some() {
                    HitLevel::L2
                } else {
                    self.l2.install(line, NEVER);
                    HitLevel::Memory
                };
                let (i, ovf) = self.l1.install(line, self.epoch);
                (level, i, ovf)
            }
        };
        if overflow {
            // The evicted victim carried current-epoch speculative bits;
            // its state left the cache with it.
            debug_assert!(self.spec_count > 0);
            self.spec_count -= 1;
        }
        if speculative {
            self.mark_spec(idx, write);
        }
        if self.filter {
            self.mru_line = line;
            self.mru_idx = idx;
            self.mru_epoch = self.epoch;
        }
        self.train(site, line, idx);
        (level, overflow)
    }

    /// Commits the current region: flash-clears all speculative bits (a
    /// single epoch bump — the O(1) wired clear the paper describes). The
    /// epoch bump also flash-clears the MRU filter entry.
    pub fn commit_region(&mut self) {
        self.flush_pending();
        self.epoch += 1;
        self.spec_count = 0;
    }

    /// Aborts the current region: speculatively-written lines are
    /// invalidated (their data is rolled back architecturally by the undo
    /// log); read bits — and the MRU filter entry — are flash-cleared.
    pub fn abort_region(&mut self) {
        self.flush_pending();
        for (i, e) in self.l1.spec_write_epoch.iter().enumerate() {
            if *e == self.epoch {
                self.l1.tags[i] = TAG_INVALID;
            }
        }
        self.epoch += 1;
        self.spec_count = 0;
    }

    /// Number of L1 lines currently holding speculative state — O(1) from
    /// the maintained counter (the invariant validator calls this on every
    /// commit and abort in validation mode).
    pub fn spec_lines(&self) -> usize {
        debug_assert_eq!(
            self.spec_count as usize,
            self.spec_lines_scan(),
            "maintained speculative-line counter out of sync with the array scan"
        );
        self.spec_count as usize
    }

    /// The reference O(sets×ways) scan the counter replaces; retained as
    /// the debug-mode oracle for [`CacheSim::spec_lines`].
    fn spec_lines_scan(&self) -> usize {
        (0..self.l1.tags.len())
            .filter(|&i| self.l1.tags[i] != TAG_INVALID && self.l1.spec(i, self.epoch))
            .count()
    }

    /// An external coherence invalidation for `addr`: the line is removed
    /// from *both* levels (the model is coherence-inclusive: an external
    /// writer owns the line exclusively, so no level may keep a stale
    /// copy). Returns `true` if it hit a line in the current region's read
    /// or write set (conflict — the caller must abort the region).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.invalidate_line(line)
    }

    /// [`CacheSim::invalidate`] keyed by line index — the form the
    /// coherence directory's drain path uses (its messages carry lines,
    /// not addresses).
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        self.flush_pending();
        self.mru_line = TAG_INVALID;
        self.mru_epoch = NEVER;
        for i in self.l2.set_range(line) {
            if self.l2.tags[i] == line {
                self.l2.tags[i] = TAG_INVALID;
                self.l2.spec_read_epoch[i] = NEVER;
                self.l2.spec_write_epoch[i] = NEVER;
                break;
            }
        }
        let r = self.l1.set_range(line);
        for i in r {
            if self.l1.tags[i] == line {
                let conflict = self.l1.spec(i, self.epoch);
                if conflict {
                    debug_assert!(self.spec_count > 0);
                    self.spec_count -= 1;
                }
                self.l1.tags[i] = TAG_INVALID;
                self.l1.spec_read_epoch[i] = NEVER;
                self.l1.spec_write_epoch[i] = NEVER;
                return conflict;
            }
        }
        false
    }

    /// An external coherence *downgrade* for `line` (a remote reader took
    /// a shared copy). A shared copy may stay resident, so on the
    /// non-conflict path this is a no-op — unless the line carries a
    /// current-epoch speculative *write* bit: the remote read observed
    /// data this region has not committed, which is a conflict, and the
    /// line (whose data the undo log rolls back architecturally) is fully
    /// invalidated exactly as [`CacheSim::invalidate_line`] would.
    /// Returns `true` on conflict — the caller must abort the region.
    pub fn downgrade_line(&mut self, line: u64) -> bool {
        self.flush_pending();
        for i in self.l1.set_range(line) {
            if self.l1.tags[i] == line {
                if self.l1.spec_write_epoch[i] == self.epoch {
                    return self.invalidate_line(line);
                }
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> CacheSim {
        CacheSim::new(&HwConfig::baseline())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = sim();
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::Memory);
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::L1);
        assert_eq!(c.access(0x1008, false, false).0, HitLevel::L1, "same line");
        assert_eq!(
            c.access(0x1040, false, false).0,
            HitLevel::Memory,
            "next line"
        );
    }

    #[test]
    fn l2_backstop() {
        let mut c = sim();
        c.access(0x1000, false, false);
        // Evict from L1 by filling its set (128 sets * 64B = 8KB stride).
        for k in 1..=4 {
            c.access(0x1000 + k * 8192, false, false);
        }
        // 0x1000 evicted from L1 but still in L2.
        assert_eq!(c.access(0x1000, false, false).0, HitLevel::L2);
    }

    #[test]
    fn speculative_bits_and_commit() {
        let mut c = sim();
        c.access(0x2000, false, true);
        c.access(0x3000, true, true);
        assert_eq!(c.spec_lines(), 2);
        c.commit_region();
        assert_eq!(c.spec_lines(), 0);
        // Data survives commit.
        assert_eq!(c.access(0x2000, false, false).0, HitLevel::L1);
    }

    #[test]
    fn abort_invalidates_written_lines_only() {
        let mut c = sim();
        c.access(0x2000, false, true); // read set
        c.access(0x3000, true, true); // write set
        c.abort_region();
        assert_eq!(c.spec_lines(), 0);
        assert_eq!(
            c.access(0x2000, false, false).0,
            HitLevel::L1,
            "read line survives"
        );
        assert_ne!(
            c.access(0x3000, false, false).0,
            HitLevel::L1,
            "written line invalidated"
        );
    }

    #[test]
    fn overflow_when_set_full_of_speculative_lines() {
        let mut c = sim();
        // Fill one L1 set (4 ways) with speculative lines; the 5th evicts one.
        for k in 0..4u64 {
            let (_, ovf) = c.access(0x1000 + k * 8192, true, true);
            assert!(!ovf);
        }
        let (_, ovf) = c.access(0x1000 + 4 * 8192, true, true);
        assert!(ovf, "fifth speculative line in a 4-way set overflows");
    }

    #[test]
    fn conflict_detection() {
        let mut c = sim();
        c.access(0x5000, false, true);
        assert!(
            c.invalidate(0x5008),
            "invalidation of read-set line conflicts"
        );
        assert!(!c.invalidate(0x9000), "unrelated line: no conflict");
        c.access(0x6000, false, false);
        c.commit_region();
        assert!(!c.invalidate(0x6000), "non-speculative line: no conflict");
    }

    #[test]
    fn mru_filter_absorbs_only_covered_accesses() {
        let mut c = sim();
        assert!(!c.absorbed(0x1000, false, false), "cold cache: disarmed");
        c.access(0x1000, false, false);
        assert!(c.absorbed(0x1008, false, false), "same line is armed");
        assert!(!c.absorbed(0x1040, false, false), "different line");
        // Speculative coverage: a read bit absorbs reads but not writes;
        // the write bit covers both (the skipped read bit is unobservable).
        c.access(0x1000, false, true);
        assert!(c.absorbed(0x1008, false, true));
        assert!(!c.absorbed(0x1008, true, true), "write needs the write bit");
        c.access(0x1000, true, true);
        assert!(c.absorbed(0x1008, true, true));
        assert!(c.absorbed(0x1008, false, true), "write bit covers reads");
        c.commit_region();
        assert!(
            !c.absorbed(0x1000, false, false),
            "the commit epoch bump flash-clears the filter"
        );
        c.access(0x1000, false, false);
        c.invalidate(0x1000);
        assert!(!c.absorbed(0x1000, false, false), "invalidate disarms");
    }

    #[test]
    fn unfiltered_config_never_arms_the_filter() {
        let mut c = CacheSim::new(&HwConfig::unfiltered());
        c.access(0x1000, false, false);
        c.access(0x1000, false, false);
        assert!(!c.absorbed(0x1008, false, false));
    }

    #[test]
    fn invalidate_removes_the_line_from_both_levels() {
        let mut c = sim();
        c.access(0x1000, false, false); // resident in L1 and L2
        c.invalidate(0x1000);
        assert_eq!(
            c.access(0x1000, false, false).0,
            HitLevel::Memory,
            "coherence-inclusive: the L2 copy is gone too"
        );
    }

    #[test]
    fn deferred_lru_preserves_victim_choice_against_reference() {
        let mut f = sim();
        let mut r = CacheSim::new(&HwConfig::unfiltered());
        // A same-line run (collapsed by the filter in `f`), then an eviction
        // storm through the same L1 set (8 KB stride), then re-probes: every
        // hit level, overflow signal, and the victim sequence behind them
        // must match the unfiltered reference access for access.
        let mut seq: Vec<(u64, bool, bool)> = vec![
            (0x1000, false, false),
            (0x1008, false, false),
            (0x1010, true, false),
            (0x1018, false, false),
        ];
        for k in 1..=4u64 {
            seq.push((0x1000 + k * 8192, false, false));
        }
        seq.push((0x1000, false, false));
        seq.push((0x1000 + 8192, true, true));
        seq.push((0x1000 + 8192, false, true));
        for &(a, w, s) in &seq {
            assert_eq!(f.access(a, w, s), r.access(a, w, s), "at {a:#x}");
            assert_eq!(f.spec_lines(), r.spec_lines());
        }
    }

    #[test]
    fn spec_counter_tracks_overflow_and_conflict_evictions() {
        let mut c = sim();
        for k in 0..4u64 {
            c.access(0x1000 + k * 8192, true, true);
        }
        assert_eq!(c.spec_lines(), 4);
        let (_, ovf) = c.access(0x1000 + 4 * 8192, true, true);
        assert!(ovf);
        assert_eq!(c.spec_lines(), 4, "victim left with its bits, +1 new line");
        assert!(c.invalidate(0x1000 + 4 * 8192));
        assert_eq!(
            c.spec_lines(),
            3,
            "conflicting line left the read/write set"
        );
    }

    #[test]
    fn target_cache_hit_miss_and_alias_eviction() {
        let mut t = TargetCache::new();
        // Cold: every probe misses.
        assert_eq!(t.lookup(10, 3), None);
        t.insert(10, 3, 77);
        // Hit requires both the site and the dynamic key to match.
        assert_eq!(t.lookup(10, 3), Some(77));
        assert_eq!(t.lookup(10, 4), None, "same site, different selector");
        assert_eq!(t.lookup(11, 3), None, "different site, same selector");
        // A new selector at the same site replaces the entry (direct-mapped,
        // one way per index): the old pair is gone.
        t.insert(10, 4, 88);
        assert_eq!(t.lookup(10, 4), Some(88));
        assert_eq!(t.lookup(10, 3), None, "evicted by the same-site update");
        // Aliasing: sites 512 apart map to the same entry and evict each
        // other (index is site & (BTB_ENTRIES - 1)).
        t.insert(5, 0, 1);
        assert_eq!(t.lookup(5, 0), Some(1));
        t.insert(5 + 512, 0, 2);
        assert_eq!(t.lookup(5 + 512, 0), Some(2));
        assert_eq!(t.lookup(5, 0), None, "aliased site evicted the entry");
        // The empty sentinel never matches a real site hash even at the
        // aliasing index of u64::MAX.
        assert_eq!(t.lookup(u64::MAX, 0), None);
    }

    /// Drives one access through the production sited discipline: fast path
    /// first, full (training) path on a fast miss — what the machine's
    /// `mem_access_parts` does, minus the footprint bookkeeping.
    fn sited(c: &mut CacheSim, site: u32, addr: u64, write: bool, spec: bool) -> (HitLevel, bool) {
        match c.fast_hit(site, addr, write, spec) {
            Some(_) => (HitLevel::L1, false),
            None => c.access_sited(site, addr, write, spec),
        }
    }

    #[test]
    fn way_predictor_trains_validates_and_deoptimizes() {
        let mut c = sim();
        // Cold site: the consult is a plain miss, the full path trains it.
        assert_eq!(c.fast_hit(3, 0x1000, false, false), None);
        c.access_sited(3, 0x1000, false, false);
        let after_train = c.pred_stats();
        assert_eq!(after_train.probes, 1);
        assert_eq!(after_train.hits, 0);
        // Same site, same line, but the MRU filter absorbs it first — the
        // predictor is never consulted.
        assert_eq!(c.fast_hit(3, 0x1008, false, false), Some(FastHit::Absorbed));
        assert_eq!(c.pred_stats().probes, 1);
        // Disarm the filter by touching another line through a different
        // site; now site 3's entry must validate and hit.
        sited(&mut c, 4, 0x2000, false, false);
        assert_eq!(c.fast_hit(3, 0x1000, false, false), Some(FastHit::Absorbed));
        assert_eq!(c.pred_stats().hits, 1);
        assert_eq!(c.pred_stats().mispredicts, 0);
        // Evict 0x1000 from L1 (fill its 4-way set with an 8 KB stride):
        // the stale entry must fail validation, not claim a hit.
        for k in 1..=4u64 {
            sited(&mut c, 10 + k as u32, 0x1000 + k * 8192, false, false);
        }
        assert_eq!(c.fast_hit(3, 0x1000, false, false), None);
        assert_eq!(c.pred_stats().mispredicts, 1);
        // The full path retrains; the site predicts again.
        assert_eq!(c.access_sited(3, 0x1000, false, false).0, HitLevel::L2);
        sited(&mut c, 4, 0x2000, false, false);
        assert_eq!(c.fast_hit(3, 0x1000, false, false), Some(FastHit::Absorbed));
    }

    #[test]
    fn predictor_hit_reports_footprint_obligation() {
        let mut c = sim();
        // Train site 7 outside a region, touch another line to disarm the
        // MRU filter, then re-access speculatively: residency is validated
        // but the line's first in-region touch still owes the footprint.
        c.access_sited(7, 0x3000, false, false);
        sited(&mut c, 8, 0x4000, false, false);
        assert_eq!(c.fast_hit(7, 0x3000, false, true), Some(FastHit::Resident));
        assert_eq!(c.spec_lines(), 1, "the validated hit marked the read bit");
        // Covered repeat (after disarming the filter again): absorbed.
        sited(&mut c, 8, 0x4000, false, false);
        assert_eq!(c.fast_hit(7, 0x3000, false, true), Some(FastHit::Absorbed));
        // A write through the read-covered line is residency-only again.
        sited(&mut c, 8, 0x4000, false, false);
        assert_eq!(c.fast_hit(7, 0x3000, true, true), Some(FastHit::Resident));
        sited(&mut c, 8, 0x4000, false, false);
        assert_eq!(
            c.fast_hit(7, 0x3000, false, true),
            Some(FastHit::Absorbed),
            "the write bit covers reads"
        );
    }

    #[test]
    fn predictor_never_stale_hits_across_an_abort() {
        let mut c = sim();
        // Speculatively write a line through site 5, then abort: the line
        // is invalidated, and the site must deoptimize (mispredict), never
        // report residency for the dead line.
        sited(&mut c, 5, 0x6000, true, true);
        c.abort_region();
        assert_eq!(c.fast_hit(5, 0x6000, false, true), None);
        assert_eq!(c.pred_stats().mispredicts, 1);
        assert_ne!(
            c.access_sited(5, 0x6000, false, true).0,
            HitLevel::L1,
            "the aborted write's line is gone"
        );
    }

    #[test]
    fn sited_discipline_is_bit_identical_to_unpredicted_reference() {
        let mut p = sim();
        let mut r = CacheSim::new(&HwConfig::unpredicted());
        // Two sites alternating lines in the same L1 set (the pattern the
        // MRU filter cannot catch but per-site entries can), an eviction
        // storm, speculative marks, a commit, an abort, an invalidate: hit
        // levels, overflow signals, and spec-line counts must match the
        // predictor-off reference access for access.
        let mut seq: Vec<(u32, u64, bool, bool)> = Vec::new();
        for _ in 0..4 {
            seq.push((0, 0x1000, false, false));
            seq.push((1, 0x3000, true, false));
        }
        for k in 1..=4u64 {
            seq.push((10 + k as u32, 0x1000 + k * 8192, false, false));
        }
        for _ in 0..3 {
            seq.push((0, 0x1000, false, true));
            seq.push((1, 0x3000, true, true));
        }
        for (i, &(site, a, w, s)) in seq.iter().enumerate() {
            assert_eq!(sited(&mut p, site, a, w, s), r.access(a, w, s), "op {i}");
            assert_eq!(p.spec_lines(), r.spec_lines(), "op {i}");
        }
        p.commit_region();
        r.commit_region();
        for &(site, a, w, _) in &seq[..6] {
            assert_eq!(sited(&mut p, site, a, w, true), r.access(a, w, true));
        }
        p.abort_region();
        r.abort_region();
        assert_eq!(p.invalidate(0x3000), r.invalidate(0x3000));
        for (i, &(site, a, w, s)) in seq.iter().enumerate() {
            assert_eq!(sited(&mut p, site, a, w, s), r.access(a, w, s), "re {i}");
            assert_eq!(p.spec_lines(), r.spec_lines(), "re {i}");
        }
    }

    #[test]
    fn reset_clears_the_predictor_bit_exactly() {
        let cfg = HwConfig::baseline();
        let mut c = CacheSim::new(&cfg);
        sited(&mut c, 2, 0x1000, false, false);
        sited(&mut c, 9, 0x2000, true, true);
        assert!(c.pred_trained());
        c.reset(&cfg);
        assert!(!c.pred_trained(), "reset must drop trained entries");
        assert_eq!(c.pred_stats(), PredStats::default());
        assert_eq!(c, CacheSim::new(&cfg), "reset is bit-identical to fresh");
    }

    #[test]
    fn epoch_clear_does_not_leak_stale_bits_across_regions() {
        let mut c = sim();
        // Region 1 touches a line speculatively, commits.
        c.access(0x7000, true, true);
        c.commit_region();
        assert_eq!(c.spec_lines(), 0);
        // Region 2 re-touches the same line non-speculatively: still clean.
        c.access(0x7000, false, false);
        assert_eq!(c.spec_lines(), 0);
        // A conflict probe on it must not see region 1's stale write bit.
        assert!(!c.invalidate(0x7000));
        // Region 3: the line is speculative again only once re-marked.
        c.access(0x8000, false, true);
        c.abort_region();
        c.access(0x8000, false, true);
        assert_eq!(c.spec_lines(), 1);
    }
}
