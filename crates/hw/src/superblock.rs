//! Decoded superblock metadata for the batched-dispatch hot path.
//!
//! A superblock is the maximal straight-line run of uops starting at a given
//! pc: it extends through interior uops (ALU, memory, checks, allocs,
//! intrinsics) and ends at — and includes — the first *terminator*: any
//! control transfer, call/return, or atomic-region primitive. Markers end a
//! block without joining one (they are architecturally free and snapshot
//! mid-stream counters, so they must never be folded into a batch).
//!
//! The index is a per-pc suffix table: `blocks[pc]` describes the block that
//! *starts* at `pc`. Interior pcs chain to the same terminator, so when the
//! machine redirects out of a block at interior uop `i` (an in-region abort,
//! a trap, an overflow), `blocks[i + 1]` is exactly the unexecuted suffix —
//! the engine subtracts it from the batched accounting and the result is
//! bit-identical to the per-uop reference (see `DESIGN.md` §Dispatch).
//!
//! Formation is a single backward scan at `CodeCache` install time, O(uops),
//! so cold methods pay nothing at run time and the table is shared across
//! machines like the uop stream itself.

use hasp_vm::bytecode::CmpOp;

use crate::cache::NO_SITE;
use crate::uop::{MReg, Uop, UOP_CLASSES};

/// Simulated address of the thread-local yield flag polled by safepoints —
/// the one data address in this ISA that is a seal-time constant, and
/// therefore the whole universe of the static access plan below.
pub const YIELD_FLAG_ADDR: u64 = 0x100;

/// A block terminator decoded at seal time: the `next_block` link the
/// chained dispatch loop follows without re-reading (or re-matching) the
/// full [`Uop`] stream. Terminators whose payload lives on the heap (call
/// argument lists, `jmp_ind` tables) or that must go through the shared
/// `step` semantics keep a [`SbTerm::Decode`] sentinel and are fetched from
/// the uop stream on dispatch.
///
/// Every variant stores only `Copy` data, so the whole terminator rides in
/// the [`SbInfo`] the engine has already fetched — chaining block-to-block
/// costs one enum match on seal-time metadata, not a fetch/decode of the
/// terminator uop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SbTerm {
    /// Fetch the terminator uop and dispatch it in the engine (calls,
    /// indirect jumps, `Unreachable`, and blocks sealed early by a marker
    /// or end-of-stream whose last uop is not a control transfer).
    #[default]
    Decode,
    /// `jmp`: the sealed direct-successor link.
    Jmp {
        /// Target pc (the successor block's head).
        next: u32,
    },
    /// `br`: both successors sealed (fall-through is `pc + len`).
    Br {
        /// Branch condition.
        op: CmpOp,
        /// Left operand register.
        a: MReg,
        /// Right operand register.
        b: MReg,
        /// Taken-path target pc.
        taken: u32,
    },
    /// `ret`: pooled frame pop, return value from `src`.
    Ret {
        /// Return-value register, if any.
        src: Option<MReg>,
    },
    /// `aregion_begin`: inline region entry (checkpoint + governor).
    RegionBegin {
        /// Static region id.
        region: u32,
        /// Abort/alternate pc.
        alt: u32,
    },
    /// `aregion_end`: inline region commit.
    RegionEnd {
        /// Static region id.
        region: u32,
    },
    /// `aregion_abort`: inline rollback to the region's alternate pc.
    Abort {
        /// Assert id (`u32::MAX` flags an SLE lock-check abort).
        assert_id: u32,
    },
}

/// Precomputed metadata for the superblock starting at one pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbInfo {
    /// Number of uops in the block, terminator included. `0` marks a
    /// `Marker` uop, which is dispatched outside any block.
    pub len: u32,
    /// True when some uop in the block can fault, abort, or trap (memory
    /// accesses, checks, allocs, region primitives, calls...). A block
    /// without this bit retires unconditionally once entered.
    pub can_fault: bool,
    /// The block's terminator, decoded at seal time (shared by every
    /// interior pc chaining to it).
    pub term: SbTerm,
    /// Per-class retired-uop tallies for the whole block, dense in
    /// [`UOP_CLASSES`] order — the batch delta applied at block entry.
    pub classes: [u32; UOP_CLASSES.len()],
    /// Access pre-classification (seal time): how many uops in the block
    /// touch data memory (loads, stores, lock ops, len/class reads, polls).
    /// Feeds the per-method static memory density the dispatch benchmark
    /// reports against each workload's cache-off ceiling (DESIGN §12). A
    /// monomorphized interior loop keyed on `mem_ops == 0` was built and
    /// measured here first: duplicating the interior loop cost ~10% in
    /// I-cache/branch footprint — more than the stripped memory arms saved
    /// — so the classification stays seal-time metadata.
    pub mem_ops: u16,
    /// How many of [`mem_ops`](Self::mem_ops) are stores.
    pub mem_writes: u16,
    /// How many of [`mem_ops`](Self::mem_ops) are `Poll` uops (fixed-address
    /// yield-flag reads).
    pub poll_ops: u16,
    /// The static access plan's run length at this pc: how many `Poll` uops
    /// the suffix starting here issues before its first dynamically-addressed
    /// access (a load/store whose address depends on a runtime object id, or
    /// an allocation's header write) and before the block's terminator.
    /// Non-memory uops between the polls do not break the run — they never
    /// call the cache model, so in cache-model terms the run is a sequence
    /// of *adjacent* same-line accesses, the shape DESIGN §12's deferred-LRU
    /// argument proves collapsible. At retire time the batched engine
    /// charges the whole run at its head poll (one real probe + `run - 1`
    /// bulk L1 hits) and skips the followers.
    pub poll_run: u16,
    /// The seal-site identity of the uop *at this pc* for the way predictor
    /// (DESIGN §16): a dense per-method index over the pcs that access data
    /// memory (loads, stores, lock/len/class reads, polls — exactly the
    /// `mem_kind` set; allocations are excluded), assigned in pc order by a
    /// forward post-pass; [`crate::cache::NO_SITE`] for every other pc.
    /// `CodeCache::install` rebases these by a cache-global site counter so
    /// each installed method's sites own disjoint predictor slots. Unlike
    /// the rest of `SbInfo` this describes one uop, not the block's suffix.
    pub mem_site: u32,
}

/// One entry of a block's sealed static access plan: a data address whose
/// cache line is a seal-time constant, with the number of reads and writes
/// the block issues to it. The plan is the *deduplicated* static set — one
/// entry per unique address, not per access — so the retire-time engine
/// probes the cache model once per entry and bulk-charges the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticLine {
    /// The statically known byte address (the cache line is derived by the
    /// machine's configured line size at probe time, so the plan itself
    /// stays configuration-independent).
    pub addr: u64,
    /// Reads the block issues to this address.
    pub reads: u16,
    /// Writes the block issues to this address.
    pub writes: u16,
}

impl SbInfo {
    /// The fall-through pc for a block starting at `pc` (one past the
    /// terminator; meaningful only when the terminator does not redirect).
    pub fn fall_through(&self, pc: usize) -> usize {
        pc + self.len as usize
    }

    /// How many of the block's memory accesses are *statically resolved* —
    /// their target cache line is a seal-time constant. In this ISA that is
    /// exactly the `Poll` uops: every other access goes through a runtime
    /// object id, and 16-byte object alignment (vs 64-byte lines) means even
    /// same-object field pairs are not provably same-line.
    pub fn static_ops(&self) -> u16 {
        self.poll_ops
    }

    /// How many of the block's memory accesses need dynamic address
    /// resolution at retire time (the complement of [`Self::static_ops`]).
    pub fn dynamic_ops(&self) -> u16 {
        self.mem_ops - self.poll_ops
    }

    /// The block's sealed static access plan: the deduplicated list of
    /// seal-time-resolvable addresses with per-address read/write counts.
    /// Currently at most one entry — the yield flag — because it is the only
    /// fixed data address in the ISA; the representation generalizes to any
    /// future fixed-address uop by growing the returned list.
    pub fn static_plan(&self) -> Option<StaticLine> {
        (self.poll_ops > 0).then_some(StaticLine {
            addr: YIELD_FLAG_ADDR,
            reads: self.poll_ops,
            writes: 0,
        })
    }

    /// True when the block's memory accesses are statically confined to at
    /// most one distinct cache line: one access at most, or every access a
    /// `Poll` of the fixed yield-flag address. (Field accesses off one base
    /// register do *not* qualify — consecutive fields can straddle a line
    /// boundary, and the base register may be rewritten mid-block.)
    pub fn one_line(&self) -> bool {
        self.mem_ops <= 1 || self.poll_ops == self.mem_ops
    }
}

/// `Some(is_store)` for uops that access data memory; `None` otherwise.
/// Mirrors exactly the set of interior arms that call the cache model.
fn mem_kind(u: &Uop) -> Option<bool> {
    match u {
        Uop::StoreField { .. } | Uop::StoreElem { .. } | Uop::StoreLock { .. } => Some(true),
        Uop::LoadField { .. }
        | Uop::LoadElem { .. }
        | Uop::LoadLen { .. }
        | Uop::LoadLock { .. }
        | Uop::LoadClass { .. }
        | Uop::Poll => Some(false),
        _ => None,
    }
}

/// True for uops whose retirement touches the cache model at a *dynamic*
/// address, ending any statically-collapsible poll run in flight: loads and
/// stores (object-id-relative addresses), and allocations (whose header
/// write goes through `mem_access` on the shared step path). Pure register,
/// check, and intrinsic uops never call the cache model, so they pass
/// through a run without breaking it.
fn breaks_poll_run(u: &Uop) -> bool {
    mem_kind(u).is_some() && !matches!(u, Uop::Poll)
        || matches!(u, Uop::AllocObj { .. } | Uop::AllocArr { .. })
}

/// True for uops that end a superblock: control transfers, call linkage,
/// and region primitives (whose handlers consult or mutate machine-global
/// state mid-stream), plus `Unreachable` (which must not be pre-retired).
fn is_terminator(u: &Uop) -> bool {
    matches!(
        u,
        Uop::Jmp { .. }
            | Uop::Br { .. }
            | Uop::JmpInd { .. }
            | Uop::Call { .. }
            | Uop::CallVirt { .. }
            | Uop::Ret { .. }
            | Uop::RegionBegin { .. }
            | Uop::RegionEnd { .. }
            | Uop::Abort { .. }
            | Uop::Unreachable { .. }
    )
}

/// True for interior uops that can redirect control mid-block (trap, abort
/// the enclosing region, or overflow the speculative footprint).
fn can_fault(u: &Uop) -> bool {
    match u {
        // Only guarded Div/Rem can trap among ALU ops.
        Uop::Alu { op, .. } => op.can_trap(),
        Uop::Const { .. }
        | Uop::ConstNull { .. }
        | Uop::Mov { .. }
        | Uop::CmpSet { .. }
        | Uop::InstOf { .. }
        | Uop::Jmp { .. }
        | Uop::Br { .. }
        | Uop::JmpInd { .. }
        | Uop::Intrin { .. }
        | Uop::Marker { .. } => false,
        _ => true,
    }
}

/// Decodes a block's last uop into its sealed [`SbTerm`]. Uops with heap
/// payload (calls, `jmp_ind`) and non-terminators sealed early by a marker
/// or end-of-stream stay [`SbTerm::Decode`].
fn decode_term(u: &Uop) -> SbTerm {
    match *u {
        Uop::Jmp { target } => SbTerm::Jmp {
            next: target as u32,
        },
        Uop::Br { op, a, b, target } => SbTerm::Br {
            op,
            a,
            b,
            taken: target as u32,
        },
        Uop::Ret { src } => SbTerm::Ret { src },
        Uop::RegionBegin { region, alt } => SbTerm::RegionBegin {
            region,
            alt: alt as u32,
        },
        Uop::RegionEnd { region } => SbTerm::RegionEnd { region },
        Uop::Abort { assert_id } => SbTerm::Abort { assert_id },
        _ => SbTerm::Decode,
    }
}

/// Builds the per-pc superblock suffix table for a uop stream. One backward
/// pass: a terminator (or end-of-stream, or a following marker) seeds a
/// block of length 1; every interior pc extends its successor's block.
pub fn build_blocks(uops: &[Uop]) -> Vec<SbInfo> {
    let mut blocks: Vec<SbInfo> = Vec::with_capacity(uops.len());
    for (rev, u) in uops.iter().rev().enumerate() {
        let pc = uops.len() - 1 - rev;
        let mut info = if let Uop::Marker { .. } = u {
            // Dispatched outside any block; `len: 0` is the sentinel.
            blocks.push(SbInfo {
                len: 0,
                can_fault: false,
                term: SbTerm::Decode,
                classes: [0; UOP_CLASSES.len()],
                mem_ops: 0,
                mem_writes: 0,
                poll_ops: 0,
                poll_run: 0,
                mem_site: NO_SITE,
            });
            continue;
        } else if is_terminator(u)
            || pc + 1 >= uops.len()
            || blocks.last().expect("suffix").len == 0
        {
            // The block is this uop alone: it is a terminator, the stream
            // ends here, or the next uop is a marker (which may not batch).
            // A block's final uop retires through the terminator/step path,
            // never the interior loop, so it seeds `poll_run: 0` even when
            // it is itself a `Poll` — runs cover interior pcs only.
            SbInfo {
                len: 1,
                can_fault: can_fault(u),
                term: decode_term(u),
                classes: [0; UOP_CLASSES.len()],
                mem_ops: 0,
                mem_writes: 0,
                poll_ops: 0,
                poll_run: 0,
                mem_site: NO_SITE,
            }
        } else {
            // Interior uop: prepend to the successor block (the sealed
            // terminator link is shared by every pc chaining to it).
            let suffix = &blocks[blocks.len() - 1];
            SbInfo {
                len: suffix.len + 1,
                can_fault: suffix.can_fault || can_fault(u),
                term: suffix.term,
                classes: suffix.classes,
                mem_ops: suffix.mem_ops,
                mem_writes: suffix.mem_writes,
                poll_ops: suffix.poll_ops,
                // Extended below once this uop's own kind is known.
                poll_run: suffix.poll_run,
                mem_site: NO_SITE,
            }
        };
        info.classes[u.class() as usize] += 1;
        if let Some(write) = mem_kind(u) {
            info.mem_ops += 1;
            if write {
                info.mem_writes += 1;
            }
            if matches!(u, Uop::Poll) {
                info.poll_ops += 1;
            }
        }
        // The static run recurrence. `info.len > 1` distinguishes interior
        // pcs (where the run may extend into the suffix) from single-uop
        // blocks (whose sole uop is the terminator, outside any run).
        if info.len > 1 {
            if matches!(u, Uop::Poll) {
                info.poll_run += 1;
            } else if breaks_poll_run(u) {
                info.poll_run = 0;
            }
        }
        blocks.push(info);
    }
    blocks.reverse();
    // Seal-site assignment (a forward pass — the suffix scan above runs
    // backward, but sites must be dense in pc order so `install`'s rebase
    // keeps them stable under suffix reuse): every memory-accessing pc gets
    // the next per-method predictor slot.
    let mut site = 0u32;
    for (b, u) in blocks.iter_mut().zip(uops) {
        if mem_kind(u).is_some() {
            b.mem_site = site;
            site += 1;
        }
    }
    blocks
}

/// Number of seal sites [`build_blocks`] assigned: the count of
/// memory-accessing pcs (every `mem_site` is in `0..mem_sites(blocks)` or
/// [`NO_SITE`]).
pub fn mem_sites(blocks: &[SbInfo]) -> u32 {
    blocks.iter().filter(|b| b.mem_site != NO_SITE).count() as u32
}

/// The destination register a uop writes in its own frame, if any. `Ret`
/// writes the *caller's* frame, never its own, so it reports `None`.
fn dst_reg(u: &Uop) -> Option<MReg> {
    match *u {
        Uop::Const { dst, .. }
        | Uop::ConstNull { dst }
        | Uop::Mov { dst, .. }
        | Uop::Alu { dst, .. }
        | Uop::CmpSet { dst, .. }
        | Uop::InstOf { dst, .. }
        | Uop::LoadField { dst, .. }
        | Uop::LoadElem { dst, .. }
        | Uop::LoadLen { dst, .. }
        | Uop::LoadLock { dst, .. }
        | Uop::LoadClass { dst, .. }
        | Uop::AllocObj { dst, .. }
        | Uop::AllocArr { dst, .. } => Some(dst),
        Uop::Intrin { dst, .. } | Uop::Call { dst, .. } | Uop::CallVirt { dst, .. } => dst,
        _ => None,
    }
}

/// The sorted set of registers writable inside the atomic region entered at
/// `begin` (a `RegionBegin` pc): every dst register of a uop reachable from
/// the region body without crossing a region-resolving uop.
///
/// This is what makes the sparse register checkpoint sound: regions contain
/// no calls, so only explicit dst writes can change the frame's registers
/// between `aregion_begin` and the abort point — an abort that restores
/// exactly this set restores a file bit-identical to a full-copy rollback.
fn region_write_set(uops: &[Uop], begin: usize) -> Vec<u32> {
    let mut visited = vec![false; uops.len()];
    let mut stack = vec![begin + 1];
    let mut writes: Vec<u32> = Vec::new();
    while let Some(pc) = stack.pop() {
        if pc >= uops.len() || visited[pc] {
            continue;
        }
        visited[pc] = true;
        let u = &uops[pc];
        if let Some(d) = dst_reg(u) {
            writes.push(d.0);
        }
        match *u {
            // The region is resolved (or the code is malformed and the
            // machine faults before any further frame writes): stop.
            Uop::RegionEnd { .. }
            | Uop::Abort { .. }
            | Uop::Ret { .. }
            | Uop::RegionBegin { .. }
            | Uop::Unreachable { .. }
            | Uop::Call { .. }
            | Uop::CallVirt { .. } => {}
            Uop::Jmp { target } => stack.push(target),
            Uop::Br { target, .. } => {
                stack.push(pc + 1);
                stack.push(target);
            }
            Uop::JmpInd {
                ref table, default, ..
            } => {
                stack.extend(table.iter().copied());
                stack.push(default);
            }
            _ => stack.push(pc + 1),
        }
    }
    writes.sort_unstable();
    writes.dedup();
    writes
}

/// Builds the per-region write-set table for a uop stream, indexed by the
/// dense region id: the registers the machine must checkpoint at each
/// region entry. Built at `CodeCache` install time alongside the
/// superblock index.
pub fn build_region_writes(uops: &[Uop]) -> Vec<Box<[u32]>> {
    let mut out: Vec<Box<[u32]>> = Vec::new();
    for (pc, u) in uops.iter().enumerate() {
        if let Uop::RegionBegin { region, .. } = *u {
            let r = region as usize;
            if out.len() <= r {
                out.resize_with(r + 1, Box::default);
            }
            out[r] = region_write_set(uops, pc).into_boxed_slice();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_vm::bytecode::{BinOp, CmpOp};

    fn konst(r: u32) -> Uop {
        Uop::Const {
            dst: MReg(r),
            imm: 1,
        }
    }

    #[test]
    fn straight_line_run_forms_one_block_per_suffix() {
        let uops = vec![
            konst(0),
            konst(1),
            Uop::Alu {
                op: BinOp::Add,
                dst: MReg(0),
                a: MReg(0),
                b: MReg(1),
            },
            Uop::Ret { src: Some(MReg(0)) },
        ];
        let b = build_blocks(&uops);
        assert_eq!(b.iter().map(|s| s.len).collect::<Vec<_>>(), [4, 3, 2, 1]);
        // Whole-stream block: 3 alu-class uops + 1 call-class ret.
        assert_eq!(b[0].classes[crate::uop::UopClass::Alu as usize], 3);
        assert_eq!(b[0].classes[crate::uop::UopClass::Call as usize], 1);
        // Pure register block — nothing can fault before the ret, but the
        // ret itself is linkage.
        assert!(!b[2].can_fault || b[2].len == 2, "alu+ret suffix");
        assert_eq!(b[0].fall_through(0), 4);
    }

    #[test]
    fn terminators_and_markers_split_blocks() {
        let uops = vec![
            konst(0),
            Uop::Br {
                op: CmpOp::Ge,
                a: MReg(0),
                b: MReg(0),
                target: 0,
            },
            konst(1),
            Uop::Marker { id: 7 },
            konst(2),
            Uop::Ret { src: None },
        ];
        let b = build_blocks(&uops);
        // const+br | br | const (marker stops it) | marker | const+ret | ret
        assert_eq!(
            b.iter().map(|s| s.len).collect::<Vec<_>>(),
            [2, 1, 1, 0, 2, 1]
        );
    }

    #[test]
    fn access_preclassification_counts_through_suffixes() {
        let uops = vec![
            konst(0),
            Uop::LoadField {
                dst: MReg(1),
                obj: MReg(0),
                field: 0,
            },
            Uop::Poll,
            Uop::StoreField {
                obj: MReg(0),
                field: 1,
                src: MReg(1),
            },
            Uop::Ret { src: None },
        ];
        let b = build_blocks(&uops);
        assert_eq!((b[0].mem_ops, b[0].mem_writes, b[0].poll_ops), (3, 1, 1));
        assert!(!b[0].one_line(), "load + store can straddle lines");
        // Suffix from the store on: a single access is one-line by definition.
        assert_eq!(b[3].mem_ops, 1);
        assert!(b[3].one_line());
        // Pure register blocks carry no memory metadata.
        let alu = build_blocks(&[konst(0), Uop::Ret { src: None }]);
        assert_eq!(alu[0].mem_ops, 0);
        assert!(alu[0].one_line());
        // An all-poll block touches only the yield-flag line.
        let polls = build_blocks(&[Uop::Poll, Uop::Poll, Uop::Ret { src: None }]);
        assert_eq!((polls[0].mem_ops, polls[0].poll_ops), (2, 2));
        assert!(polls[0].one_line());
    }

    #[test]
    fn poll_runs_coalesce_across_non_memory_uops_only() {
        // [Poll, alu, Poll, CheckDiv, Poll, Ret]: the three polls form one
        // static run — ALU and check uops never touch the cache model.
        let uops = vec![
            Uop::Poll,
            konst(0),
            Uop::Poll,
            Uop::CheckDiv { v: MReg(0) },
            Uop::Poll,
            Uop::Ret { src: None },
        ];
        let b = build_blocks(&uops);
        assert_eq!(b[0].poll_run, 3, "whole run visible from the block head");
        assert_eq!(b[2].poll_run, 2, "suffix entry mid-run sees its remainder");
        assert_eq!(b[4].poll_run, 1);
        assert_eq!(b[5].poll_run, 0, "terminators are outside any run");
        assert_eq!(b[0].static_ops(), 3);
        assert_eq!(b[0].dynamic_ops(), 0);
        let plan = b[0].static_plan().expect("three static accesses");
        assert_eq!(
            plan,
            StaticLine {
                addr: YIELD_FLAG_ADDR,
                reads: 3,
                writes: 0
            }
        );

        // A dynamically-addressed access between polls breaks the run: the
        // load's line depends on a runtime object id, so the polls are no
        // longer adjacent in cache-model terms.
        let split = build_blocks(&[
            Uop::Poll,
            Uop::LoadField {
                dst: MReg(1),
                obj: MReg(0),
                field: 0,
            },
            Uop::Poll,
            Uop::Ret { src: None },
        ]);
        assert_eq!(split[0].poll_run, 1, "run stops at the dynamic load");
        assert_eq!(split[2].poll_run, 1);
        assert_eq!((split[0].static_ops(), split[0].dynamic_ops()), (2, 1));

        // Allocations access memory through the shared step path (header
        // write), so they break runs exactly like an explicit store.
        let alloc = build_blocks(&[
            Uop::Poll,
            Uop::AllocObj {
                dst: MReg(0),
                class: hasp_vm::bytecode::ClassId(0),
            },
            Uop::Poll,
            Uop::Ret { src: None },
        ]);
        assert_eq!(alloc[0].poll_run, 1, "alloc header write breaks the run");

        // A poll sealed alone (next uop is a marker) retires through the
        // step path, never the interior loop: no run, no plan collapse.
        let sealed = build_blocks(&[Uop::Poll, Uop::Marker { id: 1 }, Uop::Ret { src: None }]);
        assert_eq!(sealed[0].len, 1);
        assert_eq!(sealed[0].poll_run, 0);
        assert_eq!(sealed[0].static_ops(), 1, "still counted as resolved");

        // Blocks with no polls have no plan.
        let none = build_blocks(&[konst(0), Uop::Ret { src: None }]);
        assert!(none[0].static_plan().is_none());
    }

    #[test]
    fn seal_sites_are_dense_in_pc_order_over_memory_uops() {
        let uops = vec![
            konst(0),
            Uop::LoadField {
                dst: MReg(1),
                obj: MReg(0),
                field: 0,
            },
            Uop::Poll,
            Uop::AllocObj {
                dst: MReg(2),
                class: hasp_vm::bytecode::ClassId(0),
            },
            Uop::StoreField {
                obj: MReg(0),
                field: 1,
                src: MReg(1),
            },
            Uop::Marker { id: 1 },
            Uop::LoadLen {
                dst: MReg(3),
                arr: MReg(2),
            },
            Uop::Ret { src: None },
        ];
        let b = build_blocks(&uops);
        // Memory pcs (load, poll, store, len) get sites 0..4 in pc order;
        // ALU, alloc (header write carries no sealed identity), marker, and
        // ret pcs carry the NO_SITE sentinel.
        assert_eq!(
            b.iter().map(|s| s.mem_site).collect::<Vec<_>>(),
            [NO_SITE, 0, 1, NO_SITE, 2, NO_SITE, 3, NO_SITE]
        );
        assert_eq!(mem_sites(&b), 4);
        // Site identity is per-pc, not per-suffix: interior and head views
        // of the same pc agree by construction (one table entry per pc).
        assert_eq!(mem_sites(&build_blocks(&[konst(0)])), 0);
    }

    #[test]
    fn fault_capability_is_tracked_through_suffixes() {
        let uops = vec![
            konst(0),
            Uop::CheckNull { v: MReg(0) },
            konst(1),
            Uop::Jmp { target: 0 },
        ];
        let b = build_blocks(&uops);
        assert!(b[0].can_fault, "contains a check");
        assert!(b[1].can_fault);
        assert!(!b[2].can_fault, "const+jmp cannot fault");
        // Trapping ALU counts as faulting; plain ALU does not.
        let div = build_blocks(&[
            Uop::Alu {
                op: BinOp::Div,
                dst: MReg(0),
                a: MReg(0),
                b: MReg(1),
            },
            Uop::Ret { src: None },
        ]);
        assert!(div[0].can_fault);
    }

    #[test]
    fn region_write_set_covers_reachable_dsts_only() {
        // 0: const r9        (outside the region — must not be collected)
        // 1: aregion_begin alt=8
        // 2: const r0
        // 3: br -> 6
        // 4: const r1        (fallthrough arm)
        // 5: jmp -> 7
        // 6: const r2        (taken arm)
        // 7: aregion_end
        // 8: const r3        (after the region — unreachable from inside)
        // 9: ret
        let uops = vec![
            konst(9),
            Uop::RegionBegin { region: 0, alt: 8 },
            konst(0),
            Uop::Br {
                op: CmpOp::Ge,
                a: MReg(0),
                b: MReg(0),
                target: 6,
            },
            konst(1),
            Uop::Jmp { target: 7 },
            konst(2),
            Uop::RegionEnd { region: 0 },
            konst(3),
            Uop::Ret { src: None },
        ];
        let writes = build_region_writes(&uops);
        assert_eq!(writes.len(), 1, "one region");
        // Both branch arms are in the set; pre-region and post-commit
        // writes are not.
        assert_eq!(writes[0].as_ref(), &[0, 1, 2]);
    }

    #[test]
    fn terminators_are_sealed_into_links() {
        let uops = vec![
            konst(0),
            Uop::Br {
                op: CmpOp::Ge,
                a: MReg(0),
                b: MReg(1),
                target: 5,
            },
            Uop::Jmp { target: 0 },
            Uop::RegionBegin { region: 3, alt: 9 },
            Uop::RegionEnd { region: 3 },
            Uop::Abort { assert_id: 7 },
            konst(1),
            Uop::Marker { id: 1 },
            Uop::Call {
                dst: None,
                target: hasp_vm::bytecode::MethodId(0),
                args: Box::default(),
            },
            Uop::Ret { src: Some(MReg(2)) },
        ];
        let b = build_blocks(&uops);
        // Interior pcs share the sealed terminator with the block head.
        assert_eq!(
            b[0].term,
            SbTerm::Br {
                op: CmpOp::Ge,
                a: MReg(0),
                b: MReg(1),
                taken: 5
            }
        );
        assert_eq!(b[1].term, b[0].term);
        assert_eq!(b[2].term, SbTerm::Jmp { next: 0 });
        assert_eq!(b[3].term, SbTerm::RegionBegin { region: 3, alt: 9 });
        assert_eq!(b[4].term, SbTerm::RegionEnd { region: 3 });
        assert_eq!(b[5].term, SbTerm::Abort { assert_id: 7 });
        // Sealed early by the marker: a non-terminator tail stays Decode.
        assert_eq!(b[6].term, SbTerm::Decode);
        assert_eq!(b[6].len, 1);
        // Calls keep their heap payload in the uop stream.
        assert_eq!(b[8].term, SbTerm::Decode);
        assert_eq!(b[9].term, SbTerm::Ret { src: Some(MReg(2)) });
    }

    #[test]
    fn empty_region_write_set_is_empty() {
        // aregion_begin immediately followed by aregion_end: nothing is
        // writable inside, so the checkpoint must be empty (not missing).
        let uops = vec![
            Uop::RegionBegin { region: 0, alt: 3 },
            Uop::RegionEnd { region: 0 },
            Uop::Ret { src: None },
            konst(0),
            Uop::Ret { src: None },
        ];
        let writes = build_region_writes(&uops);
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].as_ref(), &[] as &[u32]);
    }

    #[test]
    fn alt_path_superset_is_not_collected() {
        // The alternate (non-speculative) path writes a superset of the
        // region body's registers; only the in-region writes belong to the
        // checkpoint — the alt path runs with no checkpoint armed.
        // 0: aregion_begin alt=3
        // 1: const r0
        // 2: aregion_end ; 5: ret
        // 3: const r0, 4: const r1  (alt path: superset {r0, r1})
        let uops = vec![
            Uop::RegionBegin { region: 0, alt: 3 },
            konst(0),
            Uop::RegionEnd { region: 0 },
            konst(0),
            konst(1),
            Uop::Ret { src: None },
        ];
        let writes = build_region_writes(&uops);
        assert_eq!(
            writes[0].as_ref(),
            &[0],
            "alt-path writes must not inflate the sparse checkpoint"
        );
    }

    #[test]
    fn back_to_back_regions_get_independent_write_sets() {
        // Two regions where the second begin is the uop right after the
        // first's end — each write set covers exactly its own body, and a
        // shared begin pc (the DFS stop at RegionBegin) does not leak the
        // successor region's writes into the predecessor's set.
        // 0: aregion_begin alt=6
        // 1: const r0
        // 2: aregion_end
        // 3: aregion_begin alt=7
        // 4: const r1
        // 5: aregion_end ; 8: ret
        let uops = vec![
            Uop::RegionBegin { region: 0, alt: 6 },
            konst(0),
            Uop::RegionEnd { region: 0 },
            Uop::RegionBegin { region: 1, alt: 7 },
            konst(1),
            Uop::RegionEnd { region: 1 },
            konst(2),
            konst(3),
            Uop::Ret { src: None },
        ];
        let writes = build_region_writes(&uops);
        assert_eq!(writes.len(), 2, "both begins get a set");
        assert_eq!(writes[0].as_ref(), &[0], "first region: only r0");
        assert_eq!(writes[1].as_ref(), &[1], "second region: only r1");
    }

    #[test]
    fn suffix_deltas_decompose_exactly() {
        // blocks[pc].classes == uop(pc).class + blocks[pc+1].classes for
        // interior pcs — the identity the mid-block unapply path relies on.
        let uops = vec![
            konst(0),
            Uop::CheckNull { v: MReg(0) },
            Uop::LoadField {
                dst: MReg(1),
                obj: MReg(0),
                field: 0,
            },
            konst(2),
            Uop::Ret { src: None },
        ];
        let b = build_blocks(&uops);
        for pc in 0..uops.len() - 1 {
            if b[pc].len <= 1 {
                continue;
            }
            let mut rebuilt = b[pc + 1].classes;
            rebuilt[uops[pc].class() as usize] += 1;
            assert_eq!(b[pc].classes, rebuilt, "pc {pc}");
            assert_eq!(b[pc].len, b[pc + 1].len + 1, "pc {pc}");
        }
    }
}
