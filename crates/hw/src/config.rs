//! Hardware configurations (Table 1 of the paper, plus the §6.3 sensitivity
//! variants) and the abort-recovery policy ([`GovernorConfig`] — recovery
//! policy lives here, not with fault *injection*).

use hasp_vm::bytecode::MethodId;

use crate::fault::FaultPlan;
use crate::stats::AbortReason;

/// How [`Machine::exec`](crate::machine::Machine) walks the uop stream.
///
/// Both modes are observably identical — same checksums, same [`RunStats`]
/// (uops, cycles, aborts, class mix), same marker snaps — which the
/// dispatch-equivalence gate asserts on every suite workload. `PerUop` is
/// the reference interpretation; `Superblock` is the production hot path.
///
/// [`RunStats`]: crate::stats::RunStats
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Reference interpretation: fetch, account, and execute one uop at a
    /// time. Always used when per-uop fault injection or the invariant
    /// validator is armed, so injected-fault results stay bit-identical.
    PerUop,
    /// Chained superblock dispatch: maximal straight-line runs execute with
    /// one batched fuel/stats update per block from metadata precomputed at
    /// `CodeCache` install time, and control transfers stay *inside* the
    /// block engine. Sealed terminators link blocks into traces (jumps,
    /// branches), `aregion_begin`/`end`/`abort` are handled inline, and
    /// call/return run on a pooled-frame fast path — the engine drops to
    /// per-uop stepping only for traps, monitors, validation, and
    /// injection. A mid-chain abort or trap unapplies the unexecuted block
    /// suffix so every observation point matches [`Dispatch::PerUop`]
    /// exactly.
    #[default]
    Superblock,
}

/// The online abort-recovery governor policy: a per-region **tier ladder**
/// (§7 made single-run, extended to the best-effort-HTM policy ladder).
///
/// The hardware reports which region aborted (§3.2); the governor tracks
/// per-region *consecutive-abort streaks* online and walks each region up a
/// four-tier ladder as streaks keep exhausting the retry budget:
///
/// * **Tier 0** — speculate freely (healthy region, no governor state).
/// * **Tier 1** — retry with exponential backoff: a region whose streak
///   reaches [`retry_budget`](Self::retry_budget) has its `aregion_begin`
///   patched to branch straight to the alternate PC for
///   [`cooldown_entries`](Self::cooldown_entries) would-be entries
///   (de-speculation), after which it is re-enabled. Each successive
///   de-speculation doubles the cooldown up to
///   [`max_cooldown`](Self::max_cooldown).
/// * **Tier 2** — fallback-lock subscription: after
///   [`tier2_disables`](Self::tier2_disables) de-speculations the region
///   still speculates, but every `aregion_begin` reads the global fallback
///   lock word into the region's read-set, so a software-path lock holder
///   conflicts the region out; while the region is de-speculated the
///   software path *takes* the lock, giving mutual isolation between
///   hardware and software executions of the same region.
/// * **Tier 3** — permanent software path: after
///   [`tier3_disables`](Self::tier3_disables) further de-speculations every
///   entry branches to the alternate PC under the fallback lock, for good.
///
/// Escalation is **abort-class-aware**: `Interrupt`/`Spurious` aborts are
/// environmental noise and grow no streak; `Conflict`/`Sle` climb the
/// ladder via backoff; a run of [`reform_budget`](Self::reform_budget)
/// consecutive `Overflow`/`Explicit` aborts additionally emits a
/// [`ReformRequest`] asking the harness to re-form the region's boundaries
/// with the offending site excluded (adaptive re-formation) instead of
/// demoting it forever. A calm streak of
/// [`cooldown_entries`](Self::cooldown_entries) consecutive commits halves
/// the cooldown and de-escalates one tier, so transient fault bursts
/// recover while sustained post-profile behavior changes converge to the
/// non-speculative code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Master switch (off = the seed's offline two-pass behavior).
    pub enabled: bool,
    /// Consecutive aborts of one region before it is de-speculated.
    pub retry_budget: u32,
    /// Entries a de-speculated region skips before re-enable (base value of
    /// the exponential backoff).
    pub cooldown_entries: u64,
    /// Backoff ceiling in skipped entries.
    pub max_cooldown: u64,
    /// Consecutive de-speculations before a region escalates to tier 2
    /// (fallback-lock subscription). 0 = never escalate past tier 1.
    pub tier2_disables: u32,
    /// Further de-speculations past tier 2 before the region goes to tier 3
    /// (permanent software path). 0 = never escalate past tier 2.
    pub tier3_disables: u32,
    /// Consecutive `Overflow`/`Explicit` aborts of one region before a
    /// [`ReformRequest`] is emitted (at most one per region per run).
    /// 0 = never request re-formation.
    pub reform_budget: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig::off()
    }
}

impl GovernorConfig {
    /// Governor disabled.
    pub fn off() -> Self {
        GovernorConfig {
            enabled: false,
            retry_budget: 3,
            cooldown_entries: 64,
            max_cooldown: 65_536,
            tier2_disables: 2,
            tier3_disables: 2,
            reform_budget: 4,
        }
    }

    /// The default online policy — the full ladder: 3-abort streaks
    /// de-speculate, 64-entry base cooldown, backoff ceiling of 64K
    /// entries, tier 2 after 2 de-speculations, tier 3 after 2 more,
    /// re-formation requested after 4 consecutive footprint/assert aborts.
    pub fn online() -> Self {
        GovernorConfig {
            enabled: true,
            ..GovernorConfig::off()
        }
    }

    /// The PR 2 policy: retry + exponential backoff only, no fallback-lock
    /// tier, no permanent software path, no re-formation. The ablation
    /// baseline for the ladder.
    pub fn backoff_only() -> Self {
        GovernorConfig {
            enabled: true,
            tier2_disables: 0,
            tier3_disables: 0,
            reform_budget: 0,
            ..GovernorConfig::off()
        }
    }

    /// The ladder capped at tier 2: fallback-lock subscription engages but
    /// regions are never permanently demoted to the software path.
    pub fn to_tier2() -> Self {
        GovernorConfig {
            tier3_disables: 0,
            ..GovernorConfig::online()
        }
    }
}

/// A governor request to *re-form* one region instead of demoting it: the
/// region kept aborting on its speculative footprint or a failed assert
/// (`Overflow`/`Explicit`), which recompilation can actually fix — rerun
/// region formation with the offending boundary excluded and the region
/// re-enters at tier 0.
///
/// The machine only *emits* these ([`Machine::take_reform_requests`]); the
/// experiments harness drains them between run quanta, recompiles via
/// `hasp_opt::compile_program` with the exclusion set grown, and reinstalls
/// the `CodeCache`.
///
/// [`Machine::take_reform_requests`]: crate::machine::Machine::take_reform_requests
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReformRequest {
    /// Method owning the offending region.
    pub method: MethodId,
    /// Per-method region id (index into the method's region table).
    pub region: u32,
    /// The region's formation boundary: the original (pre-replication)
    /// block id that seeded it — stable across recompiles, so it names the
    /// site to exclude. `u32::MAX` when the compiled code carries no
    /// boundary map (hand-built uops).
    pub boundary: u32,
    /// The abort class that triggered the request.
    pub reason: AbortReason,
    /// Distinct cache lines the region had touched when it last aborted —
    /// the footprint evidence backing an `Overflow` request.
    pub footprint_lines: u64,
}

/// Parameters of the simulated machine.
///
/// Defaults reproduce Table 1: a 4.0 GHz, 4-wide out-of-order core with a
/// 128-entry instruction window, 20-cycle branch misprediction penalty,
/// 32 KB 4-way L1 (4-cycle), 4 MB 8-way L2 (20-cycle), 64-byte lines, and
/// 100 ns memory, executing atomic regions on a checkpoint substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct HwConfig {
    /// Display name for experiment reports.
    pub name: &'static str,
    /// Rename/issue/retire width.
    pub width: u64,
    /// Instruction window size (used by the §6.2 region/ROB analysis and the
    /// single-in-flight drain estimate).
    pub window: u64,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u64,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// Memory latency in cycles (100 ns at 4 GHz = 400).
    pub mem_latency: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Average overlap factor for long-latency misses (models MLP/stream
    /// prefetching: stall cycles are `latency / mlp`).
    pub mlp: u64,
    /// Extra stall cycles charged at every `aregion_begin` (Figure 9's
    /// "+ 20-cycle overhead" configuration; 0 for the checkpoint substrate).
    pub begin_stall: u64,
    /// Permit only one atomic region in flight: an `aregion_begin` stalls at
    /// decode until the previous region commits (Figure 9's
    /// "single-inflight" configuration).
    pub single_inflight: bool,
    /// Pipeline flush cycles charged on a region abort.
    pub abort_penalty: u64,
    /// Deterministic fault-injection plan (conflicts, interrupts, spurious
    /// aborts, footprint budget, targeted entry aborts).
    pub faults: FaultPlan,
    /// Run the post-abort/post-commit invariant validator (undo log drained,
    /// speculative bits flash-cleared, checkpoint fully restored, region
    /// counters consistent). Architecturally free; intended for tests and
    /// fault campaigns.
    pub validate: bool,
    /// The online abort-recovery governor policy.
    pub governor: GovernorConfig,
    /// Uop-stream dispatch strategy (see [`Dispatch`]).
    pub dispatch: Dispatch,
    /// Arm the cache model's MRU line filter + deferred-LRU fast path
    /// (`DESIGN.md` §12). Semantics-preserving — hit levels, overflow
    /// signals, and conflict verdicts are bit-identical either way, which
    /// `tests/prop_hw.rs` and `tests/filter_equivalence.rs` gate — so this
    /// is on by default; `false` forces the unfiltered reference model for
    /// those equivalence gates.
    pub mem_filter: bool,
    /// Arm the seal-site way predictor in front of the dynamic-access set
    /// scan (`DESIGN.md` §16): each sealed memory-uop site caches the last
    /// `(line, L1 way)` it resolved, and a consult validated against the
    /// live tag array skips the scan and install path. Semantics-preserving
    /// — `tests/predictor_equivalence.rs` and the lockstep proptest gate
    /// bit-exactness against the predictor-off reference — so it is on by
    /// default; `false` forces the unpredicted reference model.
    pub way_predict: bool,
    /// Bulk per-superblock cache accounting (DESIGN §13): the superblock
    /// interior charges hit/latency statistics through a per-block
    /// accumulator flushed once at block exit, collapses statically
    /// resolved poll runs from the sealed access plan into one probe plus a
    /// bulk charge, and uses seal-time-precomputed miss-latency increments.
    /// Semantics-preserving — `tests/batch_equivalence.rs` and the lockstep
    /// proptest gate bit-exactness against the per-access reference — so it
    /// is on by default; `false` forces the immediate per-access accounting
    /// path. Only meaningful under [`Dispatch::Superblock`]; the per-uop
    /// engine always accounts per access.
    pub batched_mem: bool,
    /// Ablation: skip the L1/L2 timing model entirely (every access counts
    /// as an L1 hit; region footprints and injected line budgets still
    /// work). NOT semantics-preserving — geometric overflow aborts
    /// disappear — so it exists only to measure what the cache model costs
    /// (the `bench-dispatch` ceiling column), never for paper figures.
    pub cache_off: bool,
}

impl HwConfig {
    /// Table 1's baseline 4-wide out-of-order processor with the
    /// high-performance checkpoint substrate.
    pub fn baseline() -> Self {
        HwConfig {
            name: "chkpt-4wide",
            width: 4,
            window: 128,
            mispredict_penalty: 20,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l1_latency: 4,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 8,
            l2_latency: 20,
            mem_latency: 400,
            line_bytes: 64,
            mlp: 4,
            begin_stall: 0,
            single_inflight: false,
            abort_penalty: 20,
            faults: FaultPlan::none(),
            validate: false,
            governor: GovernorConfig::off(),
            dispatch: Dispatch::Superblock,
            mem_filter: true,
            way_predict: true,
            batched_mem: true,
            cache_off: false,
        }
    }

    /// The baseline machine forced onto the reference per-uop dispatch path
    /// (the "before" side of the dispatch benchmark and equivalence gate).
    pub fn per_uop() -> Self {
        HwConfig {
            name: "chkpt-4wide-peruop",
            dispatch: Dispatch::PerUop,
            ..HwConfig::baseline()
        }
    }

    /// The baseline with the memory fast path disabled: the cache model
    /// answers every access through the full set-scan reference path. The
    /// "before" side of the filter-equivalence gate.
    pub fn unfiltered() -> Self {
        HwConfig {
            name: "chkpt-4wide-unfiltered",
            mem_filter: false,
            ..HwConfig::baseline()
        }
    }

    /// The baseline with the seal-site way predictor disabled: every
    /// dynamic access resolves through the set-scan reference path (the MRU
    /// filter stays armed — it predates the predictor and has its own
    /// gate). The "before" side of the predictor-equivalence gate.
    pub fn unpredicted() -> Self {
        HwConfig {
            name: "chkpt-4wide-unpredicted",
            way_predict: false,
            ..HwConfig::baseline()
        }
    }

    /// The baseline with bulk per-superblock cache accounting disabled:
    /// every interior memory access charges statistics and latency
    /// immediately, and sealed poll runs replay access by access. The
    /// "before" side of the batch-equivalence gate.
    pub fn unbatched() -> Self {
        HwConfig {
            name: "chkpt-4wide-unbatched",
            batched_mem: false,
            ..HwConfig::baseline()
        }
    }

    /// The cache-model-off ablation: superblock dispatch with every memory
    /// access treated as an L1 hit. Quantifies the model's share of
    /// simulator runtime (the `bench-dispatch` ceiling).
    pub fn no_cache_model() -> Self {
        HwConfig {
            name: "chkpt-4wide-nocache",
            cache_off: true,
            ..HwConfig::baseline()
        }
    }

    /// Figure 9: 20-cycle pipeline stall at every `aregion_begin`.
    pub fn with_begin_overhead() -> Self {
        HwConfig {
            name: "chkpt+20-cycle",
            begin_stall: 20,
            ..HwConfig::baseline()
        }
    }

    /// Figure 9: a single atomic region in flight at a time.
    pub fn single_inflight() -> Self {
        HwConfig {
            name: "chkpt-single-inflight",
            single_inflight: true,
            ..HwConfig::baseline()
        }
    }

    /// §6.3: 2-wide OOO version of the baseline (widths halved).
    pub fn two_wide() -> Self {
        HwConfig {
            name: "chkpt-2wide",
            width: 2,
            ..HwConfig::baseline()
        }
    }

    /// §6.3: 2-wide with all structures halved ("many-core" style).
    pub fn two_wide_half() -> Self {
        HwConfig {
            name: "chkpt-2wide-half",
            width: 2,
            window: 64,
            l1_bytes: 16 * 1024,
            l1_ways: 2,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 4,
            mlp: 2,
            ..HwConfig::baseline()
        }
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> u64 {
        self.l1_bytes / self.line_bytes / self.l1_ways
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> u64 {
        self.l2_bytes / self.line_bytes / self.l2_ways
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = HwConfig::baseline();
        assert_eq!(c.width, 4);
        assert_eq!(c.window, 128);
        assert_eq!(c.mispredict_penalty, 20);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(c.mem_latency, 400, "100ns at 4GHz");
        assert_eq!(c.l1_sets(), 128);
        assert_eq!(c.l2_sets(), 8192);
    }

    #[test]
    fn baseline_has_no_faults_and_no_governor() {
        let c = HwConfig::baseline();
        assert_eq!(c.faults, FaultPlan::none());
        assert!(!c.validate);
        assert!(!c.governor.enabled);
    }

    #[test]
    fn baseline_dispatches_superblocks_and_per_uop_variant_does_not() {
        assert_eq!(HwConfig::baseline().dispatch, Dispatch::Superblock);
        let r = HwConfig::per_uop();
        assert_eq!(r.dispatch, Dispatch::PerUop);
        // Identical timing model — only the dispatch strategy differs.
        let mut b = HwConfig::baseline();
        b.name = r.name;
        b.dispatch = Dispatch::PerUop;
        assert_eq!(b, r);
    }

    #[test]
    fn fast_path_knobs_default_on_and_ablations_differ_only_in_their_knob() {
        let b = HwConfig::baseline();
        assert!(b.mem_filter, "filter is the production default");
        assert!(!b.cache_off, "the timing model is on by default");
        let u = HwConfig::unfiltered();
        assert!(!u.mem_filter);
        let mut b2 = HwConfig::baseline();
        b2.name = u.name;
        b2.mem_filter = false;
        assert_eq!(b2, u, "unfiltered differs from baseline only by the knob");
        let n = HwConfig::no_cache_model();
        assert!(n.cache_off);
        assert_eq!(n.dispatch, Dispatch::Superblock);
        assert!(b.batched_mem, "bulk accounting is the production default");
        let ub = HwConfig::unbatched();
        assert!(!ub.batched_mem);
        let mut b3 = HwConfig::baseline();
        b3.name = ub.name;
        b3.batched_mem = false;
        assert_eq!(b3, ub, "unbatched differs from baseline only by the knob");
        assert!(b.way_predict, "way prediction is the production default");
        let up = HwConfig::unpredicted();
        assert!(!up.way_predict);
        let mut b4 = HwConfig::baseline();
        b4.name = up.name;
        b4.way_predict = false;
        assert_eq!(b4, up, "unpredicted differs from baseline only by the knob");
    }

    #[test]
    fn governor_ladder_policies() {
        let on = GovernorConfig::online();
        assert!(on.enabled);
        assert!(on.tier2_disables > 0 && on.tier3_disables > 0);
        assert!(on.reform_budget > 0);
        let b = GovernorConfig::backoff_only();
        assert!(b.enabled);
        assert_eq!(
            (b.tier2_disables, b.tier3_disables, b.reform_budget),
            (0, 0, 0),
            "backoff-only never leaves tier 1 and never reforms"
        );
        let t2 = GovernorConfig::to_tier2();
        assert!(t2.tier2_disables > 0 && t2.tier3_disables == 0);
        assert_eq!(GovernorConfig::default(), GovernorConfig::off());
    }

    #[test]
    fn sensitivity_variants() {
        assert_eq!(HwConfig::with_begin_overhead().begin_stall, 20);
        assert!(HwConfig::single_inflight().single_inflight);
        assert_eq!(HwConfig::two_wide().width, 2);
        let h = HwConfig::two_wide_half();
        assert_eq!(h.l1_bytes, 16 * 1024);
        assert_eq!(h.window, 64);
    }
}
