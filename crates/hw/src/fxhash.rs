//! A deterministic multiply-rotate hasher for the simulator's hot-path maps.
//!
//! The per-region counters, mispredicted-site tallies, and governor state are
//! all keyed by small integer tuples and touched on hot machine paths (every
//! region entry, every mispredicted branch). `std`'s default SipHash is both
//! needlessly strong for trusted integer keys and randomly seeded — which
//! makes map iteration order vary run to run. This FxHash-style hasher is a
//! few ALU ops per word and fully deterministic, so identical runs produce
//! identical map layouts.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`] (deterministic, cheap on integer keys).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`] (deterministic, cheap on integer keys).
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The Firefox-lineage multiply-rotate hasher: each input word is folded in
/// with a rotate, xor, and multiply by a single odd constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// The multiplier (a 64-bit value derived from pi, as in rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinguishes_keys() {
        let h = |k: (u32, u32)| {
            let mut hasher = FxHasher::default();
            std::hash::Hash::hash(&k, &mut hasher);
            hasher.finish()
        };
        assert_eq!(h((1, 2)), h((1, 2)), "same key, same hash");
        assert_ne!(h((1, 2)), h((2, 1)), "order matters");
        assert_ne!(h((0, 0)), h((0, 1)));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, usize), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i as usize * 3), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i as usize * 3)], u64::from(i));
        }
    }

    #[test]
    fn odd_length_byte_input() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Tail padding is zero-filled, so these collide by construction —
        // fine for the fixed-width integer keys this hasher serves.
        assert_eq!(a.finish(), b.finish());
    }
}
