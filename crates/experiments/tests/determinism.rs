//! The parallel pipeline must be an implementation detail: `run_all` on N
//! worker threads must produce bit-identical results to a fully serial
//! fill, for every cell of the matrix it is given.

use hasp_experiments::{MatrixCell, Suite};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;

/// A reduced but multi-dimensional matrix: two workloads × three compiler
/// configurations × two hardware configurations (kept small so the test
/// stays in tier-1 time budgets; the full matrix runs in `bench-suite`).
fn test_matrix(suite: &Suite) -> Vec<MatrixCell> {
    let workloads = [suite.index_of("antlr"), suite.index_of("fop")];
    let compilers = [
        CompilerConfig::no_atomic(),
        CompilerConfig::atomic(),
        CompilerConfig::atomic_aggressive(),
    ];
    let hws = [HwConfig::baseline(), HwConfig::single_inflight()];
    let mut cells = Vec::new();
    for &i in &workloads {
        for c in &compilers {
            for h in &hws {
                cells.push((i, c.clone(), h.clone()));
            }
        }
    }
    cells
}

#[test]
fn parallel_run_all_is_bit_identical_to_serial() {
    let mut serial = Suite::with_threads(1);
    let mut parallel = Suite::with_threads(4);
    let cells = test_matrix(&serial);

    serial.run_all_on(&cells, 1);
    parallel.run_all_on(&cells, 4);

    for (i, c, h) in &cells {
        let a = serial
            .cached(*i, c.name, h.name)
            .expect("serial cell executed");
        let b = parallel
            .cached(*i, c.name, h.name)
            .expect("parallel cell executed");
        assert_eq!(
            a, b,
            "cell ({i}, {}, {}) diverged across thread counts",
            c.name, h.name
        );
    }

    // The compile cache was shared: one product per (workload, compiler)
    // pair, not per cell.
    assert_eq!(serial.compiled_products(), 2 * 3);
    assert_eq!(parallel.compiled_products(), 2 * 3);
}

#[test]
fn run_all_results_match_run() {
    // A cell executed through the pipeline equals the same cell executed
    // through the serial `run` entry point on a fresh suite.
    let mut piped = Suite::with_threads(4);
    let i = piped.index_of("fop");
    let cfg = CompilerConfig::atomic();
    let hw = HwConfig::baseline();
    piped.run_all(&[(i, cfg.clone(), hw.clone())]);

    let mut direct = Suite::with_threads(1);
    let expect = direct.run(i, &cfg, &hw).clone();
    assert_eq!(piped.cached(i, cfg.name, hw.name), Some(&expect));
}
