//! Integration test for the online abort-recovery governor: a pmd-style
//! workload whose hot-branch bias flips after the profiling window keeps
//! aborting its regions forever under a stale profile. The governor must
//! convert that sustained-abort run to ≈ no-atomic performance *within a
//! single run* — the single-run replacement for the offline two-pass
//! adaptive-recompilation ablation.

use hasp_experiments::adaptive::{run_adaptive, run_governed};
use hasp_experiments::{profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;
use hasp_vm::interp::Interp;
use hasp_workloads::synthetic;

#[test]
fn governor_converts_sustained_aborts_to_baseline_performance() {
    let w = synthetic::phase_flip(72_000, 60_000, 40);
    let mut profiled = profile_workload(&w);
    // A first-pass JIT profiles only the early execution window — phase 2
    // has not happened yet when the optimizer runs. Re-profile with a
    // bounded budget covering roughly phase 1, keeping the full-run
    // reference checksum.
    let mut early = Interp::new(&w.program).with_profiling();
    early.set_fuel(900_000);
    let _ = early.run(&[]); // fuel exhaustion expected
    profiled.profile = early.profile;

    let hw = HwConfig::baseline();
    let ccfg = CompilerConfig::atomic();
    let base = run_workload(&w, &profiled, &CompilerConfig::no_atomic(), &hw);
    let ungoverned = run_workload(&w, &profiled, &ccfg, &hw);
    let governed = run_governed(&w, &profiled, &ccfg, &hw);

    eprintln!(
        "cycles: base {} ungoverned {} governed {} | aborts: ungoverned {} governed {} | \
         disables {} skips {} reenables {}",
        base.stats.cycles,
        ungoverned.stats.cycles,
        governed.stats.cycles,
        ungoverned.stats.total_aborts(),
        governed.stats.total_aborts(),
        governed.stats.governor_disables,
        governed.stats.governor_skips,
        governed.stats.governor_reenables,
    );

    // The stale profile makes the speculative binary abort persistently.
    assert!(
        ungoverned.stats.total_aborts() > 1_000,
        "phase flip must cause sustained aborts, got {}",
        ungoverned.stats.total_aborts()
    );

    // The governor de-speculates the offending region online: streaks hit
    // the retry budget, entries branch straight to the alternate PC, and
    // the abort storm collapses.
    assert!(governed.stats.governor_disables > 0, "governor engaged");
    assert!(
        governed.stats.governor_skips > 0,
        "entries were patched out"
    );
    assert!(
        governed.stats.total_aborts() < ungoverned.stats.total_aborts() / 4,
        "governed aborts {} must collapse vs ungoverned {}",
        governed.stats.total_aborts(),
        ungoverned.stats.total_aborts()
    );
    assert!(
        governed.stats.cycles <= ungoverned.stats.cycles,
        "de-speculation must not slow the run down"
    );

    // ≈ no-atomic performance within a single run.
    let ratio = governed.stats.cycles as f64 / base.stats.cycles as f64;
    assert!(
        ratio < 1.10,
        "governed run must land within 10% of the no-atomic baseline, got {ratio:.3}x"
    );
    assert_eq!(governed.compiler, "governed");

    // The governed single run matches (or beats) what the offline two-pass
    // ablation achieves with a full recompile in between.
    let outcome = run_adaptive(&w, &profiled, &ccfg, &hw);
    assert!(!outcome.recompiled.is_empty(), "ablation also diagnoses it");
    let vs_adaptive = governed.stats.cycles as f64 / outcome.second.stats.cycles as f64;
    assert!(
        vs_adaptive < 1.10,
        "one governed run ≈ the two-pass adaptive rerun, got {vs_adaptive:.3}x"
    );
}
