//! Service-harness gates: the lock-free publication protocol under real
//! threads, and conservation of the sharded statistics.
//!
//! * `publication_mid_stream_*` — a worker pool serves requests while the
//!   producer compiles a *different* code product and publishes it with one
//!   atomic swap, mid-stream. Workers never stop; every request on either
//!   version must reproduce the interpreter's reference checksum (a torn or
//!   stale-mixed read would diverge), both versions must actually be
//!   observed, and every retired version must be reclaimed once the pool
//!   drains.
//! * `sharded_stats_conserve_*` — a proptest: for any request schedule, the
//!   merged per-worker shards of a 3-worker pool equal the single-worker
//!   totals exactly (and both equal the independent atomic tally). Request
//!   results are order- and worker-independent, so sharding can never lose
//!   or double-count.

use std::sync::OnceLock;

use proptest::prelude::*;

use hasp_experiments::service::{run_leg, Tenant, TenantClass};
use hasp_opt::CompilerConfig;
use hasp_workloads::synthetic;

/// The synthetic tenant pair, profiled once: one clean, one whose big-
/// footprint regions abort under the contended line budget so aborts,
/// region tables, and governor tiers all carry nonzero freight through the
/// shard merge.
fn tenants() -> &'static Vec<Tenant> {
    static TENANTS: OnceLock<Vec<Tenant>> = OnceLock::new();
    TENANTS.get_or_init(|| {
        vec![
            Tenant::new(synthetic::add_element(2_000), TenantClass::Clean),
            Tenant::new(synthetic::footprint_split(600), TenantClass::Contended),
        ]
    })
}

#[test]
fn publication_mid_stream_is_torn_read_free() {
    let tenants = tenants();
    // 64 requests, alternating tenants; publish a *different* compiler
    // configuration's product after request 32 is pushed — while the pool
    // is busy serving.
    let schedule: Vec<u32> = (0..64u32).map(|i| i % 2).collect();
    let out = run_leg(
        tenants,
        &schedule,
        2,
        &CompilerConfig::atomic(),
        &[32],
        &CompilerConfig::atomic_aggressive(),
    );

    // No torn or mixed reads: every request, on whichever code version its
    // batch pinned, reproduced the interpreter checksum.
    assert_eq!(out.failures(), 0, "a checksum diverged across the swap");
    assert!(out.conservation_ok(), "shard merge lost a request");
    assert_eq!(out.installs, 1);
    assert_eq!(out.final_version, 2);

    // Both versions were genuinely exercised. The queue bound (smaller than
    // the pre-install half of the schedule) forces early batches to pin
    // version 1 before the publish can happen; requests pushed after the
    // publish can only pin version 2.
    let versions = out.versions_seen();
    assert!(versions.contains(&1), "pre-install version never pinned");
    assert!(versions.contains(&2), "published version never pinned");

    // With every guard dropped, the horizon passes every retired version:
    // the old cache was freed, not leaked.
    assert_eq!(out.retired_after, 0, "retired cache version leaked");
    assert!(
        out.reclaims >= 1,
        "the swapped-out version was never reclaimed"
    );

    // Both tenants actually aborted/committed through the swap (the merge
    // carried real freight, not zeros).
    let merged = out.merged_tenants();
    assert_eq!(merged.iter().map(|t| t.requests).sum::<u64>(), 64);
    assert!(
        merged[1].aborts.total() > 0,
        "contended tenant never aborted"
    );
    assert!(merged[0].commits > 0 && merged[1].commits > 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn sharded_stats_conserve_across_worker_counts(
        schedule in prop::collection::vec(0u32..2, 4..24),
    ) {
        let tenants = tenants();
        let ccfg = CompilerConfig::atomic_aggressive();
        let pooled = run_leg(tenants, &schedule, 3, &ccfg, &[], &ccfg);
        let serial = run_leg(tenants, &schedule, 1, &ccfg, &[], &ccfg);

        prop_assert!(pooled.conservation_ok());
        prop_assert!(serial.conservation_ok());
        prop_assert_eq!(pooled.global, serial.global);

        // Per-request timings are identical: results don't depend on which
        // worker served a request or in what order.
        prop_assert_eq!(pooled.request_timings(), serial.request_timings());

        // The merged shards agree field by field, including the per-region
        // tables (compared through their canonical sorted view — merge
        // order only permutes row order).
        let p = pooled.merged_tenants();
        let s = serial.merged_tenants();
        prop_assert_eq!(p.len(), s.len());
        for (a, b) in p.iter().zip(&s) {
            prop_assert_eq!(a.requests, b.requests);
            prop_assert_eq!(a.failures, b.failures);
            prop_assert_eq!(a.uops, b.uops);
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.commits, b.commits);
            prop_assert_eq!(a.aborts, b.aborts);
            prop_assert_eq!(a.tier_time, b.tier_time);
            prop_assert_eq!(a.regions.sorted_rows(), b.regions.sorted_rows());
        }
    }
}
