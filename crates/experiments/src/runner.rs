//! The evaluation driver (§5 methodology): profile with the interpreter,
//! compile under a configuration, execute on the simulated machine, and
//! extract marker-bounded samples. Every run cross-checks the machine's
//! observable checksum against the interpreter's — a functional-equivalence
//! assertion built into the experiment harness itself.

use hasp_hw::{lower, CodeCache, HwConfig, Machine, MachineFault, RunStats};
use hasp_opt::{compile_program, CompilerConfig};
use hasp_vm::interp::Interp;
use hasp_vm::profile::Profile;
use hasp_workloads::Workload;

/// Why one (workload × compiler × hardware) cell failed.
///
/// Cells fail as *values* so one malformed configuration degrades to a
/// recorded failure instead of killing its `Suite::run_all` worker thread.
#[derive(Debug, Clone, PartialEq)]
pub enum CellError {
    /// The machine faulted (VM trap, hardware misuse, invariant violation).
    Machine(MachineFault),
    /// The run completed but its checksum diverged from the interpreter's —
    /// speculation broke semantics.
    ChecksumDivergence {
        /// The interpreter's reference checksum.
        expected: i64,
        /// The machine's observed checksum.
        got: i64,
    },
    /// A sample's bounding marker never retired (ordinal 1 or 2 missing).
    MarkerMissing {
        /// The sample's marker id.
        marker: u32,
        /// Which hit ordinal was absent.
        ordinal: u64,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Machine(e) => write!(f, "machine fault: {e}"),
            CellError::ChecksumDivergence { expected, got } => write!(
                f,
                "checksum divergence: expected {expected}, got {got} — \
                 speculation broke semantics"
            ),
            CellError::MarkerMissing { marker, ordinal } => {
                write!(f, "marker {marker} hit #{ordinal} missing")
            }
        }
    }
}

impl std::error::Error for CellError {}

impl From<MachineFault> for CellError {
    fn from(e: MachineFault) -> Self {
        CellError::Machine(e)
    }
}

/// Profiling results for one workload.
#[derive(Debug)]
pub struct ProfiledWorkload {
    /// Interpreter-collected profile.
    pub profile: Profile,
    /// The reference checksum every compiled run must reproduce.
    pub reference_checksum: i64,
    /// Bytecode instructions the interpreter executed.
    pub interp_steps: u64,
}

/// Runs the profiling interpretation pass.
///
/// # Panics
/// Panics if the workload itself fails to execute.
pub fn profile_workload(w: &Workload) -> ProfiledWorkload {
    let mut interp = Interp::new(&w.program).with_profiling();
    interp.set_fuel(w.fuel);
    interp
        .run(&[])
        .unwrap_or_else(|e| panic!("workload {} failed to interpret: {e}", w.name));
    ProfiledWorkload {
        profile: interp.profile,
        reference_checksum: interp.env.checksum(),
        interp_steps: interp.steps,
    }
}

/// One marker-bounded sample measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleMeasure {
    /// Marker id bounding this sample.
    pub marker: u32,
    /// Phase weight.
    pub weight: f64,
    /// uops retired within the sample.
    pub uops: u64,
    /// Cycles within the sample.
    pub cycles: u64,
}

/// Results of one (workload × compiler × hardware) execution.
///
/// `PartialEq` is derived so parallel pipeline output can be asserted
/// bit-identical to a serial run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: &'static str,
    /// Compiler configuration name.
    pub compiler: &'static str,
    /// Hardware configuration name.
    pub hardware: &'static str,
    /// Full-run machine statistics.
    pub stats: RunStats,
    /// Per-sample measurements.
    pub samples: Vec<SampleMeasure>,
    /// Static uops in the code cache (code-size signal).
    pub static_uops: usize,
    /// Seal-site way-predictor counters (DESIGN §16). Deliberately outside
    /// [`RunStats`]: the predictor is architecturally transparent, so the
    /// equivalence gates compare `stats` field-for-field between predicted
    /// and unpredicted configurations — these counters are where the two
    /// runs are allowed to differ.
    pub pred: hasp_hw::PredStats,
}

impl WorkloadRun {
    /// Weighted sample cycles (the paper's per-benchmark execution time).
    pub fn weighted_cycles(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.weight * s.cycles as f64)
            .sum()
    }

    /// Weighted sample uops.
    pub fn weighted_uops(&self) -> f64 {
        self.samples.iter().map(|s| s.weight * s.uops as f64).sum()
    }

    /// Weighted mean of per-sample speedups over a baseline run
    /// (§5: samples weighted by phase contribution). Returns percent.
    pub fn speedup_vs(&self, base: &WorkloadRun) -> f64 {
        let mut acc = 0.0;
        for (s, b) in self.samples.iter().zip(&base.samples) {
            debug_assert_eq!(s.marker, b.marker);
            if s.cycles > 0 {
                acc += s.weight * (b.cycles as f64 / s.cycles as f64);
            }
        }
        (acc - 1.0) * 100.0
    }

    /// Weighted uop reduction over a baseline run, in percent.
    pub fn uop_reduction_vs(&self, base: &WorkloadRun) -> f64 {
        let mut acc = 0.0;
        for (s, b) in self.samples.iter().zip(&base.samples) {
            if b.uops > 0 {
                acc += s.weight * (s.uops as f64 / b.uops as f64);
            }
        }
        (1.0 - acc) * 100.0
    }
}

/// A workload compiled and lowered under one compiler configuration.
///
/// Compilation depends only on (workload, compiler), so one product is
/// shared across every hardware configuration — and, being immutable, across
/// worker threads.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// Compiler configuration name this product was built under.
    pub compiler: &'static str,
    /// Lowered machine code for every method.
    pub code: CodeCache,
    /// Static uops in the code cache (code-size signal).
    pub static_uops: usize,
}

/// Runs the compile + lower pipeline for one (workload × compiler) pair.
pub fn compile_workload(
    w: &Workload,
    profiled: &ProfiledWorkload,
    ccfg: &CompilerConfig,
) -> CompiledWorkload {
    let compiled = compile_program(&w.program, &profiled.profile, ccfg);
    let mut code = CodeCache::new();
    for (m, c) in &compiled {
        code.install(*m, lower(&c.func));
    }
    let static_uops = code.static_uops();
    CompiledWorkload {
        compiler: ccfg.name,
        code,
        static_uops,
    }
}

/// Extracts the marker-bounded sample measurements from a run's statistics.
///
/// # Errors
/// Returns [`CellError::MarkerMissing`] when a sample's bounding marker
/// never retired.
pub fn extract_samples(w: &Workload, stats: &RunStats) -> Result<Vec<SampleMeasure>, CellError> {
    w.samples
        .iter()
        .map(|s| {
            let snap = |ordinal: u64| {
                stats
                    .markers
                    .iter()
                    .find(|m| m.id == s.marker && m.ordinal == ordinal)
                    .ok_or(CellError::MarkerMissing {
                        marker: s.marker,
                        ordinal,
                    })
            };
            let start = snap(1)?;
            let end = snap(2)?;
            Ok(SampleMeasure {
                marker: s.marker,
                weight: s.weight,
                uops: end.uops - start.uops,
                cycles: end.cycles - start.cycles,
            })
        })
        .collect()
}

/// Executes an already-compiled workload on `hw`, returning failures as
/// values.
///
/// # Errors
/// Returns a [`CellError`] when the machine faults, the checksum diverges
/// from the interpreter's, or a sample marker is missing.
pub fn try_execute_compiled(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    hw: &HwConfig,
) -> Result<WorkloadRun, CellError> {
    try_execute_compiled_with(w, profiled, compiled, hw, |_| {}).map(|(run, _)| run)
}

/// [`try_execute_compiled`] with a pre-run machine hook — the entry point
/// for coherence-attached runs: `setup` typically calls
/// [`Machine::attach_core`], and the returned machine's detached state
/// (core link, stats) comes back alongside the run via the second tuple
/// element, the [`Machine`] itself having been consumed.
pub fn try_execute_compiled_with(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    hw: &HwConfig,
    setup: impl FnOnce(&mut Machine),
) -> Result<(WorkloadRun, Option<hasp_hw::CoreLink>), CellError> {
    let mut mach = Machine::new(&w.program, &compiled.code, hw.clone());
    mach.set_fuel(w.fuel.saturating_mul(4));
    setup(&mut mach);
    mach.run(&[])?;
    if mach.env.checksum() != profiled.reference_checksum {
        return Err(CellError::ChecksumDivergence {
            expected: profiled.reference_checksum,
            got: mach.env.checksum(),
        });
    }
    let stats = mach.stats().clone();
    let pred = mach.way_pred_stats();
    let link = mach.detach_core();
    let samples = extract_samples(w, &stats)?;
    Ok((
        WorkloadRun {
            workload: w.name,
            compiler: compiled.compiler,
            hardware: hw.name,
            stats,
            samples,
            static_uops: compiled.static_uops,
            pred,
        },
        link,
    ))
}

/// Executes an already-compiled workload on `hw`.
///
/// # Panics
/// Panics if the machine's checksum diverges from the interpreter's (a
/// compiler or hardware-model bug) or if a sample marker is missing.
pub fn execute_compiled(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    hw: &HwConfig,
) -> WorkloadRun {
    try_execute_compiled(w, profiled, compiled, hw).unwrap_or_else(|e| {
        panic!(
            "workload {} failed on {}/{}: {e}",
            w.name, compiled.compiler, hw.name
        )
    })
}

/// Compiles the workload under `ccfg` and executes it on `hw`.
///
/// One-shot convenience over [`compile_workload`] + [`execute_compiled`];
/// matrix sweeps should compile once and execute per hardware configuration
/// instead (see `Suite::run_all`).
///
/// # Panics
/// Panics if the machine's checksum diverges from the interpreter's or if a
/// sample marker is missing.
pub fn run_workload(
    w: &Workload,
    profiled: &ProfiledWorkload,
    ccfg: &CompilerConfig,
    hw: &HwConfig,
) -> WorkloadRun {
    execute_compiled(w, profiled, &compile_workload(w, profiled, ccfg), hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_opt::CompilerConfig;
    use hasp_workloads::synthetic;

    #[test]
    fn sample_extraction_and_weighted_metrics() {
        let w = synthetic::add_element(1_000);
        let profiled = profile_workload(&w);
        assert!(profiled.interp_steps > 1_000);
        let base = run_workload(
            &w,
            &profiled,
            &CompilerConfig::no_atomic(),
            &HwConfig::baseline(),
        );
        assert_eq!(base.samples.len(), 1);
        let s = base.samples[0];
        assert_eq!(s.marker, 1);
        assert!(s.uops > 0 && s.uops <= base.stats.uops);
        assert!(s.cycles > 0 && s.cycles <= base.stats.cycles);
        assert!((base.weighted_uops() - s.uops as f64).abs() < 1e-9);

        // Self-comparison is exactly zero.
        assert_eq!(base.speedup_vs(&base), 0.0);
        assert_eq!(base.uop_reduction_vs(&base), 0.0);

        // The atomic config's metrics are internally consistent.
        let atom = run_workload(
            &w,
            &profiled,
            &CompilerConfig::atomic(),
            &HwConfig::baseline(),
        );
        let speedup = atom.speedup_vs(&base);
        let manual = (base.samples[0].cycles as f64 / atom.samples[0].cycles as f64 - 1.0) * 100.0;
        assert!((speedup - manual).abs() < 1e-9);
    }

    #[test]
    fn profiling_is_repeatable() {
        let w = synthetic::postdom_checks(1_000);
        let a = profile_workload(&w);
        let b = profile_workload(&w);
        assert_eq!(a.reference_checksum, b.reference_checksum);
        assert_eq!(a.interp_steps, b.interp_steps);
    }
}
