//! Multi-tenant service mode: a fixed pool of pooled-frame [`Machine`]
//! workers drains a bounded MPMC queue of workload requests, all sharing one
//! published code cache.
//!
//! The serving shape the paper's §7 deployment sketch implies but never
//! benchmarks: many independent requests, one compiled-code publisher.
//! Three properties are load-bearing and each has its own enforcement:
//!
//! * **Lock-free hot dispatch.** Workers never take a lock to *find* code:
//!   the shared [`ServiceCache`] lives behind an epoch/RCU-style
//!   [`Publisher`] — installs build a new sealed cache off the worker
//!   threads and publish it with one atomic pointer swap; a worker pins the
//!   current epoch once per request batch (two atomic loads and a slot
//!   swap) and dispatches superblocks out of the pinned snapshot for the
//!   whole batch. The only mutex in the request path guards the work queue
//!   itself, never code lookup. `tests/service.rs` republishes mid-stream
//!   under real threads and asserts no torn reads: every request on either
//!   code version reproduces the interpreter checksum.
//! * **Cross-request isolation.** A worker reuses one machine across
//!   consecutive same-tenant requests via [`Machine::reset_for_request`]
//!   and recycles allocations across tenants via [`MachinePools`]; both
//!   paths are bit-identical to a fresh machine (debug-asserted in the
//!   machine, proven by `machine.rs` tests), which is what makes request
//!   timing independent of worker count and service order.
//! * **Sharded statistics with conservation.** Per-tenant stats accumulate
//!   into per-worker shards ([`TenantShard`]) with no cross-worker
//!   synchronization; a separate per-request atomic tally is kept
//!   independently, and at report time the shard merge must reproduce the
//!   atomic totals exactly ([`LegOutcome::conservation_ok`] — gated by CI
//!   and a proptest).
//!
//! Throughput and latency are reported in **simulated cycles**, not wall
//! time: each request's service time is its run's modeled `stats.cycles`
//! (deterministic and order-independent thanks to the isolation property),
//! and a discrete-event simulation places those services on N servers. That
//! makes the worker-scaling curve a property of the *model* — reproducible
//! on any host, including single-core CI — while the real OS threads
//! underneath genuinely exercise the lock-free publication protocol. The
//! artifact is `BENCH_service.json` (schema `hasp-service-v1`).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use hasp_hw::stats::AbortCounts;
use hasp_hw::{
    CodeCache, FaultPlan, GovernorConfig, Histogram, HwConfig, Machine, MachinePools, Publisher,
};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

use crate::report::{num, JsonArr, JsonObj, Table};
use crate::runner::{compile_workload, profile_workload, ProfiledWorkload};

/// Nominal clock used to express simulated cycles as time (Table 1 runs the
/// core at 4 GHz; the service tier is modeled at a derated 2 GHz part).
pub const CLOCK_GHZ: f64 = 2.0;

/// Bounded work-queue capacity: the producer blocks past this depth, so the
/// enqueue side can never outrun the pool unboundedly.
const QUEUE_CAP: usize = 8;

/// Requests a worker claims per queue lock. One epoch pin covers the whole
/// batch, amortizing the (already lock-free) pin over several requests.
const BATCH: usize = 4;

/// Speculative-footprint line budget injected for contended-class tenants:
/// large regions overflow every entry, abort streaks build, and the
/// governor ladder escalates — the "noisy neighbor" the tier-distribution
/// column watches.
const CONTENDED_LINE_BUDGET: u64 = 4;

/// Open-loop arrival utilization (percent of pool capacity) for the latency
/// simulation: high enough that queueing is visible, low enough to be
/// stable.
const OPEN_LOOP_UTIL_PCT: u64 = 95;

/// The tenant's service class: how its requests stress the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// Architectural aborts only.
    Clean,
    /// A shrunken speculative line budget ([`CONTENDED_LINE_BUDGET`])
    /// forces overflow aborts and governor-ladder activity.
    Contended,
}

impl TenantClass {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            TenantClass::Clean => "clean",
            TenantClass::Contended => "contended",
        }
    }
}

/// One tenant: a workload, its profiling products, and the hardware
/// configuration its requests execute under.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant name (the workload name).
    pub name: &'static str,
    /// Service class.
    pub class: TenantClass,
    /// The workload program and fuel budget.
    pub workload: Workload,
    /// Interpreter profile + the reference checksum every request must
    /// reproduce.
    pub profiled: ProfiledWorkload,
    /// Hardware configuration (governor online; contended tenants add the
    /// injected line budget).
    pub hw: HwConfig,
}

impl Tenant {
    /// Profiles `workload` and fixes its service-mode hardware config.
    pub fn new(workload: Workload, class: TenantClass) -> Self {
        let profiled = profile_workload(&workload);
        let hw = match class {
            TenantClass::Clean => HwConfig {
                name: "svc-clean",
                governor: GovernorConfig::online(),
                ..HwConfig::baseline()
            },
            TenantClass::Contended => HwConfig {
                name: "svc-contended",
                governor: GovernorConfig::online(),
                faults: FaultPlan::overflow_budget(CONTENDED_LINE_BUDGET),
                ..HwConfig::baseline()
            },
        };
        Tenant {
            name: workload.name,
            class,
            workload,
            profiled,
            hw,
        }
    }
}

/// The published value: one sealed [`CodeCache`] per tenant, swapped as a
/// unit so every worker always sees a mutually consistent set.
#[derive(Debug)]
pub struct ServiceCache {
    /// Sealed code, indexed by tenant id.
    pub tenants: Vec<CodeCache>,
}

/// Compiles every tenant under `ccfg` into a fresh sealed [`ServiceCache`].
/// This is the install path: it runs on the producer thread, off the
/// workers' hot path, and the result is handed to [`Publisher::publish`].
pub fn build_service_cache(tenants: &[Tenant], ccfg: &CompilerConfig) -> ServiceCache {
    ServiceCache {
        tenants: tenants
            .iter()
            .map(|t| compile_workload(&t.workload, &t.profiled, ccfg).code)
            .collect(),
    }
}

/// One queued request: schedule position + tenant id.
#[derive(Debug, Clone, Copy)]
struct Request {
    seq: u32,
    tenant: u32,
}

/// One served request's timing sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Position in the request schedule.
    pub seq: u32,
    /// Tenant id.
    pub tenant: u32,
    /// Modeled service time in simulated cycles.
    pub cycles: u64,
}

/// The bounded MPMC work queue: one mutex + two condvars. This is request
/// *admission*, not dispatch — workers touch it once per [`BATCH`].
struct WorkQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState {
    q: VecDeque<Request>,
    closed: bool,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                q: VecDeque::with_capacity(QUEUE_CAP),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the queue is at capacity (producer backpressure).
    fn push(&self, r: Request) {
        let mut s = self.state.lock().unwrap();
        while s.q.len() >= QUEUE_CAP {
            s = self.not_full.wait(s).unwrap();
        }
        s.q.push_back(r);
        drop(s);
        self.not_empty.notify_one();
    }

    /// Pops up to `max` requests; blocks while empty and open. An empty
    /// return means the queue is closed and drained.
    fn pop_batch(&self, max: usize) -> Vec<Request> {
        let mut s = self.state.lock().unwrap();
        while s.q.is_empty() && !s.closed {
            s = self.not_empty.wait(s).unwrap();
        }
        let take = s.q.len().min(max);
        let batch: Vec<Request> = s.q.drain(..take).collect();
        drop(s);
        if !batch.is_empty() {
            self.not_full.notify_all();
            // More work may remain for the other workers.
            self.not_empty.notify_one();
        }
        batch
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

/// Per-(worker × tenant) statistics shard. Accumulated with no cross-worker
/// synchronization; merged only at report time.
#[derive(Debug, Clone, Default)]
pub struct TenantShard {
    /// Requests served.
    pub requests: u64,
    /// Requests that faulted or diverged from the reference checksum.
    pub failures: u64,
    /// Retired uops.
    pub uops: u64,
    /// Modeled cycles.
    pub cycles: u64,
    /// Region commits.
    pub commits: u64,
    /// Aborts by reason.
    pub aborts: AbortCounts,
    /// Per-static-region counters (merged across requests).
    pub regions: hasp_hw::stats::RegionTable,
    /// Time-in-tier (entry consults per governor tier).
    pub tier_time: [u64; 4],
}

impl TenantShard {
    /// Adds another shard's counters into this one. Every field is a sum
    /// (or, for region tiers, a max), so the merge is order-independent.
    pub fn merge(&mut self, other: &TenantShard) {
        self.requests += other.requests;
        self.failures += other.failures;
        self.uops += other.uops;
        self.cycles += other.cycles;
        self.commits += other.commits;
        self.aborts.merge(&other.aborts);
        self.regions.merge(&other.regions);
        for (t, o) in self.tier_time.iter_mut().zip(&other.tier_time) {
            *t += o;
        }
    }
}

/// One worker's full shard: per-tenant counters, request timings, and the
/// publisher versions it pinned.
#[derive(Debug, Clone)]
pub struct WorkerShard {
    /// Per-tenant counters, indexed by tenant id.
    pub per_tenant: Vec<TenantShard>,
    /// Per-request timings this worker served.
    pub timings: Vec<RequestTiming>,
    /// Distinct publisher versions pinned by this worker.
    pub versions: BTreeSet<u64>,
}

impl WorkerShard {
    fn new(tenants: usize) -> Self {
        WorkerShard {
            per_tenant: vec![TenantShard::default(); tenants],
            timings: Vec::new(),
            versions: BTreeSet::new(),
        }
    }
}

/// The independent per-request tally the shard merge must reproduce.
#[derive(Default)]
struct Globals {
    requests: AtomicU64,
    uops: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
}

/// Everything one pool run produced, before any aggregation.
#[derive(Debug)]
pub struct LegOutcome {
    /// Worker-pool size.
    pub workers: usize,
    /// One shard per worker.
    pub shards: Vec<WorkerShard>,
    /// Mid-stream cache publications performed.
    pub installs: u64,
    /// Retired cache versions reclaimed by the publisher.
    pub reclaims: u64,
    /// Retired versions still unreclaimed after the final sweep (must be 0
    /// once every worker has unpinned).
    pub retired_after: usize,
    /// The publisher's final version counter.
    pub final_version: u64,
    /// Independent atomic totals: requests, uops, commits, aborts.
    pub global: [u64; 4],
    /// Wall-clock seconds for the pool run (host-dependent; informational).
    pub wall_s: f64,
}

impl LegOutcome {
    /// Per-tenant shards merged across workers.
    pub fn merged_tenants(&self) -> Vec<TenantShard> {
        let n = self.shards.first().map_or(0, |s| s.per_tenant.len());
        let mut merged = vec![TenantShard::default(); n];
        for shard in &self.shards {
            for (m, t) in merged.iter_mut().zip(&shard.per_tenant) {
                m.merge(t);
            }
        }
        merged
    }

    /// The conservation check: the report-time shard merge must reproduce
    /// the independently-kept atomic totals exactly. A lost or double-counted
    /// request anywhere in the sharding shows up here.
    pub fn conservation_ok(&self) -> bool {
        let merged = self.merged_tenants();
        let sums = [
            merged.iter().map(|t| t.requests).sum::<u64>(),
            merged.iter().map(|t| t.uops).sum::<u64>(),
            merged.iter().map(|t| t.commits).sum::<u64>(),
            merged.iter().map(|t| t.aborts.total()).sum::<u64>(),
        ];
        sums == self.global
    }

    /// Requests across all shards that faulted or diverged.
    pub fn failures(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.per_tenant)
            .map(|t| t.failures)
            .sum()
    }

    /// All request timings in schedule order. Panics if a schedule position
    /// was served zero or multiple times (a queue bug).
    pub fn request_timings(&self) -> Vec<RequestTiming> {
        let mut all: Vec<RequestTiming> = self
            .shards
            .iter()
            .flat_map(|s| s.timings.iter().copied())
            .collect();
        all.sort_by_key(|t| t.seq);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.seq as usize, i, "request served zero or multiple times");
        }
        all
    }

    /// Distinct publisher versions pinned across all workers.
    pub fn versions_seen(&self) -> BTreeSet<u64> {
        self.shards
            .iter()
            .flat_map(|s| s.versions.iter().copied())
            .collect()
    }
}

/// Serves one request on `mach` (already positioned on the tenant's code)
/// and records it into the worker's shard and the global tally.
fn serve_one(
    mach: &mut Machine<'_>,
    t: &Tenant,
    req: Request,
    shard: &mut WorkerShard,
    globals: &Globals,
) {
    mach.set_fuel(t.workload.fuel.saturating_mul(4));
    let ran = mach.run(&[]);
    let ok = ran.is_ok() && mach.env.checksum() == t.profiled.reference_checksum;
    let stats = mach.stats();
    let ts = &mut shard.per_tenant[req.tenant as usize];
    ts.requests += 1;
    if !ok {
        ts.failures += 1;
    }
    ts.uops += stats.uops;
    ts.cycles += stats.cycles;
    ts.commits += stats.commits;
    ts.aborts.merge(&stats.aborts);
    ts.regions.merge(&stats.per_region);
    for (acc, t) in ts.tier_time.iter_mut().zip(&stats.tier_time) {
        *acc += t;
    }
    shard.timings.push(RequestTiming {
        seq: req.seq,
        tenant: req.tenant,
        cycles: stats.cycles,
    });
    globals.requests.fetch_add(1, Ordering::Relaxed);
    globals.uops.fetch_add(stats.uops, Ordering::Relaxed);
    globals.commits.fetch_add(stats.commits, Ordering::Relaxed);
    globals
        .aborts
        .fetch_add(stats.aborts.total(), Ordering::Relaxed);
}

/// One worker: pop a batch, pin the current cache epoch once, serve the
/// batch out of the pinned snapshot — reusing one machine across
/// consecutive same-tenant requests via the reset fast path and recycling
/// allocations across tenants via the pools.
fn worker_loop(
    worker_id: usize,
    tenants: &[Tenant],
    publisher: &Publisher<ServiceCache>,
    queue: &WorkQueue,
    globals: &Globals,
) -> WorkerShard {
    let mut shard = WorkerShard::new(tenants.len());
    let mut pools = MachinePools::new();
    loop {
        let batch = queue.pop_batch(BATCH);
        if batch.is_empty() {
            return shard;
        }
        let guard = publisher.pin(worker_id);
        shard.versions.insert(guard.version());
        let mut i = 0;
        while i < batch.len() {
            let tid = batch[i].tenant as usize;
            let t = &tenants[tid];
            let mut mach = Machine::with_pools(
                &t.workload.program,
                &guard.tenants[tid],
                t.hw.clone(),
                std::mem::take(&mut pools),
            );
            loop {
                serve_one(&mut mach, t, batch[i], &mut shard, globals);
                i += 1;
                if i >= batch.len() || batch[i].tenant as usize != tid {
                    break;
                }
                mach.reset_for_request();
            }
            pools = mach.into_pools();
        }
    }
}

/// Runs one worker-pool leg: `workers` threads drain `schedule` (tenant id
/// per request) out of the bounded queue, all dispatching from one
/// published cache. After `install_points[k]` requests have been *pushed*,
/// the producer builds a fresh cache under `install_ccfg` and publishes it
/// mid-stream — workers keep executing throughout.
///
/// `install_points` must be ascending and within `1..=schedule.len()`.
pub fn run_leg(
    tenants: &[Tenant],
    schedule: &[u32],
    workers: usize,
    ccfg: &CompilerConfig,
    install_points: &[usize],
    install_ccfg: &CompilerConfig,
) -> LegOutcome {
    assert!(workers >= 1, "need at least one worker");
    assert!(
        install_points.windows(2).all(|w| w[0] < w[1])
            && install_points
                .iter()
                .all(|&p| p >= 1 && p <= schedule.len()),
        "install points must be ascending within 1..=len"
    );
    let t0 = Instant::now();
    let publisher = Publisher::new(build_service_cache(tenants, ccfg), workers);
    let queue = WorkQueue::new();
    let globals = Globals::default();

    let shards = std::thread::scope(|s| {
        let publisher = &publisher;
        let queue = &queue;
        let globals = &globals;
        let handles: Vec<_> = (0..workers)
            .map(|id| s.spawn(move || worker_loop(id, tenants, publisher, queue, globals)))
            .collect();

        let mut points = install_points.iter().peekable();
        for (seq, &tenant) in schedule.iter().enumerate() {
            queue.push(Request {
                seq: seq as u32,
                tenant,
            });
            if points.peek() == Some(&&(seq + 1)) {
                points.next();
                // Built here, on the producer thread — the workers keep
                // serving out of their pinned snapshots while this compiles,
                // then the swap below retires the old cache without ever
                // stalling a reader.
                publisher.publish(build_service_cache(tenants, install_ccfg));
            }
        }
        queue.close();
        handles
            .into_iter()
            .map(|h| h.join().expect("service worker panicked"))
            .collect::<Vec<_>>()
    });

    // Every guard is dropped; the final sweep must be able to free every
    // retired version.
    publisher.try_reclaim();
    LegOutcome {
        workers,
        shards,
        installs: publisher.installs(),
        reclaims: publisher.reclaims(),
        retired_after: publisher.retired_len(),
        final_version: publisher.version(),
        global: [
            globals.requests.load(Ordering::Relaxed),
            globals.uops.load(Ordering::Relaxed),
            globals.commits.load(Ordering::Relaxed),
            globals.aborts.load(Ordering::Relaxed),
        ],
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// Discrete-event simulation over modeled cycles.
// ---------------------------------------------------------------------------

/// Greedy FIFO makespan: all requests available at t=0, each assigned to
/// the earliest-free of `workers` servers. Returns the completion time of
/// the last request in simulated cycles.
pub fn saturation_makespan(cycles: &[u64], workers: usize) -> u64 {
    let mut servers: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();
    let mut makespan = 0;
    for &c in cycles {
        let Reverse(free) = servers.pop().expect("workers >= 1");
        let done = free + c;
        makespan = makespan.max(done);
        servers.push(Reverse(done));
    }
    makespan
}

/// Open-loop arrival simulation at `util_pct`% of pool capacity: requests
/// arrive at a fixed interval, queue FIFO for the earliest-free server.
/// Returns per-request latencies (in schedule order) and the
/// queue-depth-at-arrival histogram.
pub fn open_loop(
    reqs: &[RequestTiming],
    workers: usize,
    util_pct: u64,
) -> (Vec<RequestTiming>, Histogram) {
    let mut depth_hist = Histogram::new(&[0, 1, 2, 4, 8, 16, 32, 64]);
    if reqs.is_empty() {
        return (Vec::new(), depth_hist);
    }
    let total: u64 = reqs.iter().map(|r| r.cycles).sum();
    let delta = (total as f64 / (reqs.len() as f64 * workers as f64)) * (100.0 / util_pct as f64);
    let mut servers: BinaryHeap<Reverse<u64>> = (0..workers).map(|_| Reverse(0u64)).collect();
    let mut starts: Vec<u64> = Vec::with_capacity(reqs.len());
    let mut latencies = Vec::with_capacity(reqs.len());
    for (i, r) in reqs.iter().enumerate() {
        let arrival = (i as f64 * delta).round() as u64;
        // Queue depth at this arrival: already-arrived requests that have
        // not yet started service.
        let depth = starts.iter().filter(|&&s| s > arrival).count() as u64;
        depth_hist.record(depth);
        let Reverse(free) = servers.pop().expect("workers >= 1");
        let start = free.max(arrival);
        starts.push(start);
        servers.push(Reverse(start + r.cycles));
        latencies.push(RequestTiming {
            seq: r.seq,
            tenant: r.tenant,
            cycles: start + r.cycles - arrival,
        });
    }
    (latencies, depth_hist)
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Simulated cycles expressed in microseconds at [`CLOCK_GHZ`].
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 / (CLOCK_GHZ * 1e3)
}

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

/// One tenant's row in a leg summary.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name.
    pub name: &'static str,
    /// Service class.
    pub class: TenantClass,
    /// Requests served.
    pub requests: u64,
    /// Failed requests.
    pub failures: u64,
    /// Retired uops.
    pub uops: u64,
    /// Modeled cycles.
    pub cycles: u64,
    /// Region commits.
    pub commits: u64,
    /// Total aborts.
    pub aborts: u64,
    /// Distinct static regions.
    pub unique_regions: usize,
    /// Worst governor tier any request observed.
    pub top_tier: u8,
    /// Open-loop p50 latency, microseconds.
    pub p50_us: f64,
    /// Open-loop p99 latency, microseconds.
    pub p99_us: f64,
}

/// One worker-pool leg, aggregated for the report.
#[derive(Debug, Clone)]
pub struct LegSummary {
    /// Worker-pool size.
    pub workers: usize,
    /// Requests served.
    pub requests: u64,
    /// Failed requests.
    pub failures: u64,
    /// Saturation makespan in simulated cycles.
    pub makespan_cycles: u64,
    /// Sustained throughput at saturation, requests/second at [`CLOCK_GHZ`].
    pub throughput_rps: f64,
    /// Clean-class open-loop p50 latency, microseconds.
    pub clean_p50_us: f64,
    /// Clean-class open-loop p99 latency, microseconds.
    pub clean_p99_us: f64,
    /// Contended-class open-loop p50 latency, microseconds.
    pub contended_p50_us: f64,
    /// Contended-class open-loop p99 latency, microseconds.
    pub contended_p99_us: f64,
    /// Queue-depth-at-arrival histogram from the open-loop simulation.
    pub queue_depth: Histogram,
    /// Time-in-tier totals across all requests (governor tier distribution
    /// under load).
    pub tier_time: [u64; 4],
    /// The shard-merge conservation check.
    pub conservation: bool,
    /// Mid-stream cache publications.
    pub installs: u64,
    /// Retired versions reclaimed.
    pub reclaims: u64,
    /// Retired versions left after the final sweep (0 expected).
    pub retired_after: usize,
    /// Distinct publisher versions pinned by workers.
    pub versions_seen: usize,
    /// Host wall seconds for the pool run (informational).
    pub wall_s: f64,
    /// Per-tenant rows.
    pub per_tenant: Vec<TenantRow>,
}

/// Aggregates one leg's raw outcome into report form.
pub fn summarize_leg(tenants: &[Tenant], out: &LegOutcome) -> LegSummary {
    let reqs = out.request_timings();
    let cycles: Vec<u64> = reqs.iter().map(|r| r.cycles).collect();
    let makespan = saturation_makespan(&cycles, out.workers);
    let throughput_rps = if makespan == 0 {
        0.0
    } else {
        reqs.len() as f64 / (makespan as f64 / (CLOCK_GHZ * 1e9))
    };
    let (latencies, queue_depth) = open_loop(&reqs, out.workers, OPEN_LOOP_UTIL_PCT);

    let class_pcts = |class: TenantClass| {
        let mut v: Vec<u64> = latencies
            .iter()
            .filter(|l| tenants[l.tenant as usize].class == class)
            .map(|l| l.cycles)
            .collect();
        v.sort_unstable();
        (
            cycles_to_us(percentile(&v, 50.0)),
            cycles_to_us(percentile(&v, 99.0)),
        )
    };
    let (clean_p50_us, clean_p99_us) = class_pcts(TenantClass::Clean);
    let (contended_p50_us, contended_p99_us) = class_pcts(TenantClass::Contended);

    let merged = out.merged_tenants();
    let mut tier_time = [0u64; 4];
    for t in &merged {
        for (acc, v) in tier_time.iter_mut().zip(&t.tier_time) {
            *acc += v;
        }
    }
    let per_tenant = merged
        .iter()
        .enumerate()
        .map(|(tid, m)| {
            let mut v: Vec<u64> = latencies
                .iter()
                .filter(|l| l.tenant as usize == tid)
                .map(|l| l.cycles)
                .collect();
            v.sort_unstable();
            TenantRow {
                name: tenants[tid].name,
                class: tenants[tid].class,
                requests: m.requests,
                failures: m.failures,
                uops: m.uops,
                cycles: m.cycles,
                commits: m.commits,
                aborts: m.aborts.total(),
                unique_regions: m.regions.len(),
                top_tier: m.regions.values().map(|c| c.tier).max().unwrap_or(0),
                p50_us: cycles_to_us(percentile(&v, 50.0)),
                p99_us: cycles_to_us(percentile(&v, 99.0)),
            }
        })
        .collect();

    LegSummary {
        workers: out.workers,
        requests: reqs.len() as u64,
        failures: out.failures(),
        makespan_cycles: makespan,
        throughput_rps,
        clean_p50_us,
        clean_p99_us,
        contended_p50_us,
        contended_p99_us,
        queue_depth,
        tier_time,
        conservation: out.conservation_ok(),
        installs: out.installs,
        reclaims: out.reclaims,
        retired_after: out.retired_after,
        versions_seen: out.versions_seen().len(),
        wall_s: out.wall_s,
        per_tenant,
    }
}

/// The full service-mode benchmark report.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// CI-sized slice?
    pub smoke: bool,
    /// `(name, class)` per tenant, in tenant-id order.
    pub tenants: Vec<(&'static str, TenantClass)>,
    /// One summary per worker-pool size, ascending.
    pub legs: Vec<LegSummary>,
    /// Per-request modeled cycles identical across every leg (the
    /// cross-request-isolation property made observable).
    pub deterministic: bool,
}

impl ServiceReport {
    /// Throughput of the largest pool over the 1-worker pool.
    pub fn top_speedup(&self) -> f64 {
        match (self.legs.first(), self.legs.last()) {
            (Some(a), Some(b)) if a.throughput_rps > 0.0 => b.throughput_rps / a.throughput_rps,
            _ => 0.0,
        }
    }

    /// Every leg's throughput at least the 1-worker leg's (the scaling
    /// floor CI gates on).
    pub fn scaling_ok(&self) -> bool {
        match self.legs.first() {
            Some(first) => self
                .legs
                .iter()
                .all(|l| l.throughput_rps >= first.throughput_rps),
            None => false,
        }
    }

    /// No request anywhere faulted or diverged, every leg's shard merge
    /// conserved, and every retired cache version was reclaimed.
    pub fn all_passed(&self) -> bool {
        self.legs
            .iter()
            .all(|l| l.failures == 0 && l.conservation && l.retired_after == 0)
    }

    /// Renders the worker-scaling table plus the largest pool's per-tenant
    /// breakdown.
    pub fn table(&self) -> String {
        let mut t = Table::new(
            "Service mode: pooled workers, shared published code cache",
            &[
                "workers",
                "requests",
                "req/s",
                "speedup",
                "clean p50/p99 us",
                "cont p50/p99 us",
                "q-mean",
                "conserved",
                "installs",
            ],
        );
        let base = self.legs.first().map_or(0.0, |l| l.throughput_rps);
        for l in &self.legs {
            t.row(&[
                l.workers.to_string(),
                l.requests.to_string(),
                num(l.throughput_rps, 0),
                format!(
                    "{}x",
                    num(
                        if base > 0.0 {
                            l.throughput_rps / base
                        } else {
                            0.0
                        },
                        2
                    )
                ),
                format!("{}/{}", num(l.clean_p50_us, 0), num(l.clean_p99_us, 0)),
                format!(
                    "{}/{}",
                    num(l.contended_p50_us, 0),
                    num(l.contended_p99_us, 0)
                ),
                num(l.queue_depth.mean(), 2),
                if l.conservation { "yes" } else { "NO" }.into(),
                l.installs.to_string(),
            ]);
        }
        let mut s = t.render();
        if let Some(last) = self.legs.last() {
            let mut pt = Table::new(
                &format!("Per-tenant breakdown ({} workers)", last.workers),
                &[
                    "tenant", "class", "requests", "fail", "commits", "aborts", "top tier",
                    "p50 us", "p99 us",
                ],
            );
            for r in &last.per_tenant {
                pt.row(&[
                    r.name.into(),
                    r.class.name().into(),
                    r.requests.to_string(),
                    r.failures.to_string(),
                    r.commits.to_string(),
                    r.aborts.to_string(),
                    r.top_tier.to_string(),
                    num(r.p50_us, 0),
                    num(r.p99_us, 0),
                ]);
            }
            s.push('\n');
            s.push_str(&pt.render());
        }
        s
    }

    /// Serializes the report as the `BENCH_service.json` artifact.
    pub fn json(&self, wall_s: f64) -> String {
        let mut tenants = JsonArr::new();
        for &(name, class) in &self.tenants {
            tenants = tenants.obj(JsonObj::new().str("name", name).str("class", class.name()));
        }
        let base = self.legs.first().map_or(0.0, |l| l.throughput_rps);
        let mut legs = JsonArr::new();
        for l in &self.legs {
            let mut depth = JsonArr::new();
            for (i, &c) in l.queue_depth.counts.iter().enumerate() {
                let le = l
                    .queue_depth
                    .bounds
                    .get(i)
                    .map_or("inf".to_string(), |b| b.to_string());
                depth = depth.obj(JsonObj::new().str("le", &le).int("count", c));
            }
            let mut per_tenant = JsonArr::new();
            for r in &l.per_tenant {
                per_tenant = per_tenant.obj(
                    JsonObj::new()
                        .str("tenant", r.name)
                        .str("class", r.class.name())
                        .int("requests", r.requests)
                        .int("failures", r.failures)
                        .int("uops", r.uops)
                        .int("cycles", r.cycles)
                        .int("commits", r.commits)
                        .int("aborts", r.aborts)
                        .int("unique_regions", r.unique_regions as u64)
                        .int("top_tier", u64::from(r.top_tier))
                        .num("p50_us", r.p50_us)
                        .num("p99_us", r.p99_us),
                );
            }
            legs = legs.obj(
                JsonObj::new()
                    .int("workers", l.workers as u64)
                    .int("requests", l.requests)
                    .int("failures", l.failures)
                    .int("makespan_cycles", l.makespan_cycles)
                    .num("throughput_rps", l.throughput_rps)
                    .num(
                        "speedup_vs_1",
                        if base > 0.0 {
                            l.throughput_rps / base
                        } else {
                            0.0
                        },
                    )
                    .num("clean_p50_us", l.clean_p50_us)
                    .num("clean_p99_us", l.clean_p99_us)
                    .num("contended_p50_us", l.contended_p50_us)
                    .num("contended_p99_us", l.contended_p99_us)
                    .num("queue_depth_mean", l.queue_depth.mean())
                    .int("queue_depth_max", l.queue_depth.max)
                    .arr("queue_depth_hist", depth)
                    .obj(
                        "tier_time",
                        JsonObj::new()
                            .int("t0", l.tier_time[0])
                            .int("t1", l.tier_time[1])
                            .int("t2", l.tier_time[2])
                            .int("t3", l.tier_time[3]),
                    )
                    .bool("conservation", l.conservation)
                    .int("installs", l.installs)
                    .int("reclaims", l.reclaims)
                    .int("retired_after", l.retired_after as u64)
                    .int("versions_seen", l.versions_seen as u64)
                    .num("wall_s", l.wall_s)
                    .arr("per_tenant", per_tenant),
            );
        }
        JsonObj::new()
            .str("schema", "hasp-service-v1")
            .bool("smoke", self.smoke)
            .num("wall_s", wall_s)
            .num("clock_ghz", CLOCK_GHZ)
            .arr("tenants", tenants)
            .arr("legs", legs)
            .num("top_speedup", self.top_speedup())
            .bool("scaling_ok", self.scaling_ok())
            .bool("deterministic", self.deterministic)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The benchmark driver.
// ---------------------------------------------------------------------------

/// xorshift64 step, the repo's stock deterministic RNG.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Builds a seeded request schedule: `rounds` rounds, each containing every
/// tenant exactly once in a per-round shuffled order — a mixed arrival
/// stream with a fair per-tenant request count.
pub fn build_schedule(tenants: usize, rounds: usize, seed: u64) -> Vec<u32> {
    let mut rng = seed | 1;
    let mut schedule = Vec::with_capacity(tenants * rounds);
    for _ in 0..rounds {
        let mut round: Vec<u32> = (0..tenants as u32).collect();
        // Fisher–Yates with the seeded stream.
        for i in (1..round.len()).rev() {
            let j = (xorshift(&mut rng) % (i as u64 + 1)) as usize;
            round.swap(i, j);
        }
        schedule.extend(round);
    }
    schedule
}

/// The tenant mix: all seven suite workloads, three of them contended.
/// Smoke mode keeps one of each class (fop clean, pmd contended) — the
/// CI-sized slice `scripts/check.sh` runs.
pub fn build_tenants(smoke: bool) -> Vec<Tenant> {
    let contended = ["hsqldb", "pmd", "xalan"];
    let mut workloads = all_workloads();
    if smoke {
        workloads.retain(|w| w.name == "fop" || w.name == "pmd");
    }
    workloads
        .into_iter()
        .map(|w| {
            let class = if contended.contains(&w.name) {
                TenantClass::Contended
            } else {
                TenantClass::Clean
            };
            Tenant::new(w, class)
        })
        .collect()
}

/// Runs the service benchmark: the tenant mix served by worker pools of
/// increasing size over the same seeded schedule, with two mid-stream cache
/// publications per leg. Smoke mode shrinks the tenant set, round count,
/// and pool-size sweep.
pub fn run_service(smoke: bool) -> ServiceReport {
    let tenants = build_tenants(smoke);
    let rounds = if smoke { 12 } else { 24 };
    let schedule = build_schedule(tenants.len(), rounds, 0x5eed_cafe);
    let worker_legs: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    // Installs republish the same compiler configuration: a fresh, sealed,
    // bit-identical product. The publication machinery is fully exercised
    // while request timings stay comparable across the install boundary
    // (the concurrent-publication test covers *different* products).
    let ccfg = CompilerConfig::atomic_aggressive();
    let installs = [schedule.len() / 2, (3 * schedule.len()) / 4];

    let mut legs = Vec::new();
    let mut timings: Vec<Vec<RequestTiming>> = Vec::new();
    for &w in worker_legs {
        let out = run_leg(&tenants, &schedule, w, &ccfg, &installs, &ccfg);
        timings.push(out.request_timings());
        legs.push(summarize_leg(&tenants, &out));
    }
    let deterministic = timings.windows(2).all(|w| w[0] == w[1]);
    ServiceReport {
        smoke,
        tenants: tenants.iter().map(|t| (t.name, t.class)).collect(),
        legs,
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_makespan_packs_greedily() {
        // 2 servers, FIFO: [30] -> s1, [10,10,10] -> s2.
        assert_eq!(saturation_makespan(&[30, 10, 10, 10], 2), 30);
        assert_eq!(saturation_makespan(&[10, 10, 10, 10], 2), 20);
        assert_eq!(saturation_makespan(&[10, 10, 10, 10], 1), 40);
        assert_eq!(saturation_makespan(&[], 3), 0);
        // 4 workers on 4 equal requests: perfect 4x over 1 worker.
        assert_eq!(saturation_makespan(&[100; 8], 4), 200);
        assert_eq!(saturation_makespan(&[100; 8], 1), 800);
    }

    #[test]
    fn open_loop_uniform_service_never_queues() {
        // Uniform 1000-cycle requests on one server at 95% utilization:
        // arrivals are slower than service, so latency == service time and
        // the queue is always empty at arrival.
        let reqs: Vec<RequestTiming> = (0..20)
            .map(|i| RequestTiming {
                seq: i,
                tenant: 0,
                cycles: 1000,
            })
            .collect();
        let (lat, depth) = open_loop(&reqs, 1, 95);
        assert!(lat.iter().all(|l| l.cycles == 1000));
        assert_eq!(depth.n, 20);
        assert_eq!(depth.max, 0);
        // A huge head-of-line request backs up everything behind it.
        let mut reqs = reqs;
        reqs[0].cycles = 50_000;
        let (lat, depth) = open_loop(&reqs, 1, 95);
        assert!(lat[1].cycles > 1000, "request behind the elephant queues");
        assert!(depth.max > 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn schedule_is_fair_and_seeded() {
        let a = build_schedule(7, 24, 0x5eed_cafe);
        let b = build_schedule(7, 24, 0x5eed_cafe);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 7 * 24);
        for round in a.chunks(7) {
            let mut seen: Vec<u32> = round.to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..7).collect::<Vec<_>>(), "each round is fair");
        }
        let c = build_schedule(7, 24, 0x1234);
        assert_ne!(a, c, "different seed, different order");
        // The mix is actually mixed: not every round in the same order.
        assert!(a.chunks(7).any(|r| r != &a[..7]));
    }

    #[test]
    fn cycles_convert_at_the_nominal_clock() {
        // 2 GHz: 2000 cycles per microsecond.
        assert!((cycles_to_us(2000) - 1.0).abs() < 1e-12);
        assert!((cycles_to_us(1_000_000) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn report_json_carries_the_contract_fields() {
        let leg = LegSummary {
            workers: 2,
            requests: 10,
            failures: 0,
            makespan_cycles: 1_000_000,
            throughput_rps: 20_000.0,
            clean_p50_us: 50.0,
            clean_p99_us: 90.0,
            contended_p50_us: 60.0,
            contended_p99_us: 120.0,
            queue_depth: Histogram::new(&[0, 1, 2]),
            tier_time: [5, 3, 1, 0],
            conservation: true,
            installs: 2,
            reclaims: 2,
            retired_after: 0,
            versions_seen: 3,
            wall_s: 0.1,
            per_tenant: vec![TenantRow {
                name: "fop",
                class: TenantClass::Clean,
                requests: 10,
                failures: 0,
                uops: 100,
                cycles: 200,
                commits: 5,
                aborts: 1,
                unique_regions: 3,
                top_tier: 1,
                p50_us: 50.0,
                p99_us: 90.0,
            }],
        };
        let report = ServiceReport {
            smoke: true,
            tenants: vec![("fop", TenantClass::Clean), ("pmd", TenantClass::Contended)],
            legs: vec![
                LegSummary {
                    workers: 1,
                    throughput_rps: 11_000.0,
                    ..leg.clone()
                },
                leg,
            ],
            deterministic: true,
        };
        assert!(report.scaling_ok());
        assert!(report.all_passed());
        assert!((report.top_speedup() - 20.0 / 11.0).abs() < 1e-9);
        let json = report.json(1.5);
        assert!(json.contains("\"schema\": \"hasp-service-v1\""));
        assert!(json.contains("\"throughput_rps\": 20000.000000"));
        assert!(json.contains("\"clean_p99_us\": 90.000000"));
        assert!(json.contains("\"contended_p50_us\": 60.000000"));
        assert!(json.contains("\"queue_depth_hist\""));
        assert!(json.contains("\"t2\": 1"));
        assert!(json.contains("\"conservation\": true"));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.contains("\"speedup_vs_1\""));
        let table = report.table();
        assert!(table.contains("workers"));
        assert!(table.contains("Per-tenant breakdown"));
    }

    #[test]
    fn conservation_fails_on_a_lost_request() {
        let mut shard = WorkerShard::new(1);
        shard.per_tenant[0].requests = 3;
        shard.per_tenant[0].uops = 300;
        let out = LegOutcome {
            workers: 1,
            shards: vec![shard],
            installs: 0,
            reclaims: 0,
            retired_after: 0,
            final_version: 1,
            global: [3, 300, 0, 0],
            wall_s: 0.0,
        };
        assert!(out.conservation_ok());
        let mut broken = LegOutcome {
            global: [4, 300, 0, 0],
            ..out
        };
        assert!(!broken.conservation_ok(), "a lost request must be caught");
        broken.global = [3, 299, 0, 0];
        assert!(!broken.conservation_ok(), "lost uops must be caught");
    }
}
