//! Microbenchmark for the machine's dispatch engines: every suite workload
//! executed under per-uop dispatch and under superblock dispatch, reporting
//! retired uops/second for both and the speedup ratio. This quantifies the
//! tentpole claim that batched superblock accounting (one frame borrow, one
//! fuel/stats update per block) beats the per-uop reference loop — while
//! `tests/dispatch_equivalence.rs` proves the two are bit-identical.
//!
//! The artifact is `BENCH_dispatch.json`; the suite geomean speedup is the
//! headline number. A third leg runs superblock dispatch with the cache
//! model ablated (`HwConfig::no_cache_model`) so the remaining model cost —
//! the gap between the shipped geomean and the cache-off ceiling — is
//! tracked per PR instead of only quoted in ROADMAP prose. A fourth leg
//! disables the seal-site way predictor (`HwConfig::unpredicted`): the
//! same-binary A/B that prices the predictor (DESIGN §16), with per-
//! workload hit rates alongside so a dead predictor cannot hide behind a
//! noisy uplift.

use hasp_bench::best_of_interleaved;
use hasp_hw::{Dispatch, HwConfig};
use hasp_opt::CompilerConfig;
use hasp_workloads::all_workloads;

use crate::report::{num, JsonArr, JsonObj, Table};
use crate::runner::{compile_workload, execute_compiled, profile_workload};

/// Timed executions per (workload × mode); the minimum wall time is kept so
/// scheduler noise inflates neither leg.
const REPS: usize = 9;

/// One workload's measurement under both dispatch engines.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchRow {
    /// Workload name.
    pub workload: &'static str,
    /// Retired uops per run (identical across modes by construction).
    pub uops: u64,
    /// Best-of-[`REPS`] wall seconds under per-uop dispatch.
    pub per_uop_s: f64,
    /// Best-of-[`REPS`] wall seconds under superblock dispatch.
    pub superblock_s: f64,
    /// Best-of-[`REPS`] wall seconds under superblock dispatch with the
    /// seal-site way predictor disabled (`HwConfig::unpredicted`) — the
    /// same-binary A/B leg that prices the predictor (DESIGN §16).
    /// Semantics-preserving (the equivalence gates prove it bit-identical),
    /// so its uop count is asserted equal to the shipped leg's.
    pub unpredicted_s: f64,
    /// Best-of-[`REPS`] wall seconds under superblock dispatch with the
    /// cache model ablated (`HwConfig::no_cache_model`) — the ceiling the
    /// memory fast path chases. NOT semantics-preserving (geometric
    /// overflow aborts disappear), so its uop count is tracked separately
    /// and never asserted against the real engines.
    pub cache_off_s: f64,
    /// Retired uops of the cache-off ablation run.
    pub cache_off_uops: u64,
    /// Static data-memory uop share of the compiled code (seal-time access
    /// pre-classification, [`hasp_hw::CodeCache::static_mem_uops`]): the
    /// density that separates a workload's shipped throughput from its
    /// cache-off ceiling.
    pub static_mem_share: f64,
    /// Fraction of memory uops whose line the seal-time static access plan
    /// resolves ([`hasp_hw::CodeCache::static_resolved_uops`]): the share
    /// bulk per-superblock accounting (DESIGN §13) can collapse into sealed
    /// run probes. The complement is the dynamic-access residue the cache
    /// model still pays for per access.
    pub static_resolved_share: f64,
    /// Seal-site way-predictor consults during the superblock warm run
    /// (DESIGN §16) — every dynamic access that fell past the MRU filter
    /// with a sealed seal site.
    pub pred_probes: u64,
    /// Tag-validated predictor hits among those consults: dynamic accesses
    /// whose set scan (and, when absorbed, install/footprint work) the
    /// predictor skipped.
    pub pred_hits: u64,
}

impl DispatchRow {
    /// Retired uops per wall second under per-uop dispatch.
    pub fn per_uop_rate(&self) -> f64 {
        self.uops as f64 / self.per_uop_s
    }

    /// Retired uops per wall second under superblock dispatch.
    pub fn superblock_rate(&self) -> f64 {
        self.uops as f64 / self.superblock_s
    }

    /// Retired uops per wall second with the cache model ablated.
    pub fn cache_off_rate(&self) -> f64 {
        self.cache_off_uops as f64 / self.cache_off_s
    }

    /// Superblock speedup over per-uop (ratio of uops/sec; >1 is faster).
    pub fn speedup(&self) -> f64 {
        self.per_uop_s / self.superblock_s
    }

    /// The cache-off ceiling: speedup over per-uop if the memory model
    /// were free. The gap between this and [`DispatchRow::speedup`] is the
    /// cache model's remaining cost.
    pub fn cache_off_speedup(&self) -> f64 {
        self.per_uop_s / self.cache_off_s
    }

    /// Way-predictor hit rate over its consults (0 when never consulted).
    pub fn pred_rate(&self) -> f64 {
        if self.pred_probes == 0 {
            0.0
        } else {
            self.pred_hits as f64 / self.pred_probes as f64
        }
    }

    /// Same-binary predictor uplift on the shipped engine: unpredicted
    /// wall time over predicted wall time (>1 means the predictor pays).
    pub fn pred_speedup(&self) -> f64 {
        self.unpredicted_s / self.superblock_s
    }
}

/// The dispatch benchmark result over the workload suite.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchBenchReport {
    /// Per-workload measurements.
    pub rows: Vec<DispatchRow>,
}

impl DispatchBenchReport {
    /// Geometric-mean speedup across the suite (the headline number).
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.speedup().ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Geometric-mean cache-off ceiling across the suite: what the geomean
    /// would be if the memory model cost nothing.
    pub fn geomean_cache_off(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.cache_off_speedup().ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Geometric-mean same-binary predictor uplift across the suite.
    pub fn geomean_pred_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.pred_speedup().ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Renders the benchmark table.
    pub fn table(&self) -> String {
        let mut t = Table::new(
            "Dispatch engines: per-uop vs superblock (retired uops/sec)",
            &[
                "workload",
                "uops",
                "per-uop/s",
                "superblock/s",
                "speedup",
                "ceiling",
                "mem%",
                "static%",
                "pred%",
                "predx",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.workload.into(),
                r.uops.to_string(),
                format!("{:.2}M", r.per_uop_rate() / 1e6),
                format!("{:.2}M", r.superblock_rate() / 1e6),
                format!("{}x", num(r.speedup(), 2)),
                format!("{}x", num(r.cache_off_speedup(), 2)),
                format!("{:.1}", r.static_mem_share * 100.0),
                format!("{:.1}", r.static_resolved_share * 100.0),
                format!("{:.1}", r.pred_rate() * 100.0),
                format!("{}x", num(r.pred_speedup(), 2)),
            ]);
        }
        t.row(&[
            "geomean".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{}x", num(self.geomean_speedup(), 2)),
            format!("{}x", num(self.geomean_cache_off(), 2)),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{}x", num(self.geomean_pred_speedup(), 2)),
        ]);
        t.render()
    }

    /// Serializes the report as the `BENCH_dispatch.json` artifact.
    pub fn json(&self, smoke: bool, wall_s: f64) -> String {
        let mut rows = JsonArr::new();
        for r in &self.rows {
            rows = rows.obj(
                JsonObj::new()
                    .str("workload", r.workload)
                    .int("uops", r.uops)
                    .num("per_uop_s", r.per_uop_s)
                    .num("superblock_s", r.superblock_s)
                    .num("unpredicted_s", r.unpredicted_s)
                    .num("cache_off_s", r.cache_off_s)
                    .int("cache_off_uops", r.cache_off_uops)
                    .num("per_uop_uops_per_s", r.per_uop_rate())
                    .num("superblock_uops_per_s", r.superblock_rate())
                    .num("cache_off_uops_per_s", r.cache_off_rate())
                    .num("speedup", r.speedup())
                    .num("cache_off_speedup", r.cache_off_speedup())
                    .num("static_mem_share", r.static_mem_share)
                    .num("static_resolved_share", r.static_resolved_share)
                    .int("pred_probes", r.pred_probes)
                    .int("pred_hits", r.pred_hits)
                    .num("pred_rate", r.pred_rate())
                    .num("pred_speedup", r.pred_speedup()),
            );
        }
        JsonObj::new()
            .str("schema", "hasp-bench-dispatch-v4")
            .bool("smoke", smoke)
            .int("reps", REPS as u64)
            .num("wall_s", wall_s)
            .int("workloads", self.rows.len() as u64)
            .num("geomean_speedup", self.geomean_speedup())
            .num("geomean_cache_off", self.geomean_cache_off())
            .num("geomean_pred_speedup", self.geomean_pred_speedup())
            .arr("per_workload", rows)
            .finish()
    }
}

/// Runs the dispatch benchmark. Smoke mode restricts to two representative
/// workloads (fop, pmd) — the CI-sized slice `scripts/check.sh` runs.
///
/// Profiling and compilation happen once per workload outside the timed
/// region; both engines then execute the *same* compiled code, so the only
/// measured difference is the dispatch loop itself.
pub fn run_bench(smoke: bool) -> DispatchBenchReport {
    let mut workloads = all_workloads();
    if smoke {
        workloads.retain(|w| w.name == "fop" || w.name == "pmd");
    }
    let ccfg = CompilerConfig::atomic_aggressive();
    let sb_hw = HwConfig::baseline();
    let pu_hw = HwConfig::per_uop();
    let up_hw = HwConfig::unpredicted();
    let ablate_hw = HwConfig::no_cache_model();
    debug_assert_eq!(sb_hw.dispatch, Dispatch::Superblock);
    debug_assert_eq!(pu_hw.dispatch, Dispatch::PerUop);
    debug_assert!(sb_hw.way_predict && !up_hw.way_predict);
    debug_assert!(ablate_hw.cache_off);

    let rows = workloads
        .iter()
        .map(|w| {
            let profiled = profile_workload(w);
            let compiled = compile_workload(w, &profiled, &ccfg);
            let (mem_uops, static_uops) = compiled.code.static_mem_uops();
            let static_mem_share = mem_uops as f64 / static_uops.max(1) as f64;
            let (resolved_uops, plan_mem_uops) = compiled.code.static_resolved_uops();
            debug_assert_eq!(mem_uops, plan_mem_uops);
            let static_resolved_share = resolved_uops as f64 / plan_mem_uops.max(1) as f64;
            // The shared scaffold (`hasp_bench::scaffold`): one untimed
            // warm run per leg, then best-of-REPS interleaved round-robin
            // across the legs so host-speed drift degrades every leg
            // alike. Each timed rep must retire the warm run's exact uop
            // count — a leg can never get faster by doing different work.
            let legs = [&pu_hw, &sb_hw, &up_hw, &ablate_hw];
            let out = best_of_interleaved(
                REPS,
                legs.len(),
                |k| execute_compiled(w, &profiled, &compiled, legs[k]),
                |_, rep, warm| assert_eq!(rep.stats.uops, warm.stats.uops, "{}", w.name),
            );
            let (warm, best) = (out.warm, out.best_s);
            let [per_uop_s, superblock_s, unpredicted_s, cache_off_s] =
                best.try_into().expect("four legs");
            let (pu_warm, sb_warm, up_warm, ablate_warm) = (&warm[0], &warm[1], &warm[2], &warm[3]);
            let (pu_uops, sb_uops) = (pu_warm.stats.uops, sb_warm.stats.uops);
            assert_eq!(
                pu_uops, sb_uops,
                "{}: engines retired different uop counts",
                w.name
            );
            // The predictor is semantics-preserving, so the A/B leg must
            // retire the exact same uop stream as the shipped leg (the
            // equivalence test suite asserts full-stats identity; this
            // keeps the bench honest about comparing equal work).
            assert_eq!(
                up_warm.stats.uops, sb_uops,
                "{}: unpredicted A/B leg retired different uop counts",
                w.name
            );
            // The ablation is self-consistent across its own reps (the rep
            // loop asserts that) but intentionally NOT compared to the real
            // engines: without the cache model, geometric overflow aborts
            // disappear, so its retired-uop count may legitimately differ.
            DispatchRow {
                workload: w.name,
                uops: sb_uops,
                per_uop_s,
                superblock_s,
                unpredicted_s,
                cache_off_s,
                cache_off_uops: ablate_warm.stats.uops,
                static_mem_share,
                static_resolved_share,
                // The superblock (shipped-config) run is the leg the
                // predictor serves; its warm run is deterministic, so these
                // counters are stable across reps.
                pred_probes: sb_warm.pred.probes,
                pred_hits: sb_warm.pred.hits,
            }
        })
        .collect();

    DispatchBenchReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_rates_are_consistent() {
        let report = DispatchBenchReport {
            rows: vec![
                DispatchRow {
                    workload: "a",
                    uops: 1_000_000,
                    per_uop_s: 0.2,
                    superblock_s: 0.1,
                    unpredicted_s: 0.11,
                    cache_off_s: 0.05,
                    cache_off_uops: 1_000_000,
                    static_mem_share: 0.25,
                    static_resolved_share: 0.10,
                    pred_probes: 200_000,
                    pred_hits: 150_000,
                },
                DispatchRow {
                    workload: "b",
                    uops: 2_000_000,
                    per_uop_s: 0.8,
                    superblock_s: 0.1,
                    unpredicted_s: 0.1,
                    cache_off_s: 0.05,
                    cache_off_uops: 2_000_000,
                    static_mem_share: 0.40,
                    static_resolved_share: 0.05,
                    pred_probes: 0,
                    pred_hits: 0,
                },
            ],
        };
        assert!((report.rows[0].speedup() - 2.0).abs() < 1e-12);
        assert!((report.rows[1].speedup() - 8.0).abs() < 1e-12);
        // geomean(2, 8) = 4.
        assert!((report.geomean_speedup() - 4.0).abs() < 1e-12);
        assert!((report.rows[0].superblock_rate() - 1e7).abs() < 1e-3);
        // Ceilings: 0.2/0.05 = 4 and 0.8/0.05 = 16, geomean 8.
        assert!((report.rows[0].cache_off_speedup() - 4.0).abs() < 1e-12);
        assert!((report.geomean_cache_off() - 8.0).abs() < 1e-12);
        assert!((report.rows[0].pred_rate() - 0.75).abs() < 1e-12);
        assert!(report.rows[1].pred_rate().abs() < 1e-12, "0/0 consults");
        // A/B uplifts: 0.11/0.1 = 1.1 and 0.1/0.1 = 1, geomean sqrt(1.1).
        assert!((report.rows[0].pred_speedup() - 1.1).abs() < 1e-12);
        assert!((report.geomean_pred_speedup() - 1.1f64.sqrt()).abs() < 1e-12);
        let json = report.json(false, 1.0);
        assert!(json.contains("\"schema\": \"hasp-bench-dispatch-v4\""));
        assert!(json.contains("\"geomean_speedup\": 4.000000"));
        assert!(json.contains("\"geomean_cache_off\": 8.000000"));
        let table = report.table();
        assert!(table.contains("geomean"));
        assert!(table.contains("ceiling"));
        assert!(table.contains("mem%"));
        assert!(table.contains("static%"));
        assert!(table.contains("pred%"));
        assert!(table.contains("predx"));
        assert!(json.contains("\"geomean_pred_speedup\""));
        assert!(json.contains("\"static_mem_share\": 0.250000"));
        assert!(json.contains("\"static_resolved_share\": 0.100000"));
        assert!(json.contains("\"pred_probes\": 200000"));
        assert!(json.contains("\"pred_rate\": 0.750000"));
    }

    #[test]
    fn smoke_bench_measures_both_engines() {
        let report = run_bench(true);
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert!(r.uops > 0 && r.cache_off_uops > 0);
            assert!(r.static_mem_share > 0.0 && r.static_mem_share < 1.0);
            assert!(
                r.static_resolved_share > 0.0 && r.static_resolved_share < 1.0,
                "polls resolve statically, heap accesses do not"
            );
            assert!(r.per_uop_s > 0.0 && r.superblock_s > 0.0 && r.cache_off_s > 0.0);
            assert!(r.unpredicted_s > 0.0);
            assert!(
                r.pred_probes > 0 && r.pred_hits > 0,
                "{}: dynamic heap accesses must consult (and sometimes hit) \
                 the way predictor under the shipped config",
                r.workload
            );
        }
        assert!(report.geomean_speedup() > 0.0);
        assert!(report.geomean_cache_off() > 0.0);
    }
}
