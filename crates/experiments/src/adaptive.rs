//! Abort-recovery policies layered above the raw speculative run.
//!
//! Two policies live here:
//!
//! * [`run_governed`] — the *online* governor (the default policy): the
//!   machine itself tracks per-region consecutive-abort streaks and patches
//!   `aregion_begin` into a branch-to-alt past a retry budget, with
//!   exponential-backoff re-enable. One run, no recompilation.
//! * [`run_adaptive`] — the offline two-pass ablation (§7 future work,
//!   [Zilles & Neelakantam, CGO'05]): run once, diagnose methods whose
//!   regions exceed an abort-rate threshold via the hardware's
//!   abort-reason/abort-PC registers, recompile them without atomic
//!   regions, and re-run. Kept as the comparison point the governor is
//!   measured against.
//!
//! Both convert pmd-style post-profile behavior changes from a slowdown
//! back to ≈ baseline performance; the governor does it within a single
//! run.

use std::collections::HashSet;

use hasp_hw::{lower, CodeCache, GovernorConfig, HwConfig, Machine};
use hasp_opt::{compile_method, CompilerConfig};
use hasp_vm::bytecode::MethodId;
use hasp_workloads::Workload;

use crate::runner::{extract_samples, run_workload, ProfiledWorkload, WorkloadRun};

/// Runs `w` under `ccfg` with the online abort-recovery governor enabled:
/// the single-run replacement for the two-pass [`run_adaptive`] policy.
///
/// The returned run is labeled `"governed"` so it can sit beside the
/// ungoverned run in the same table.
///
/// # Panics
/// Panics if the run diverges from the interpreter's checksum.
pub fn run_governed(
    w: &Workload,
    profiled: &ProfiledWorkload,
    ccfg: &CompilerConfig,
    hw: &HwConfig,
) -> WorkloadRun {
    let mut hw = hw.clone();
    hw.governor = GovernorConfig::online();
    let mut run = run_workload(w, profiled, ccfg, &hw);
    run.compiler = "governed";
    run
}

/// Abort-rate threshold above which a method is recompiled without regions
/// (the paper: "an abort rate of even a few percent can have a significant
/// impact").
pub const ABORT_RATE_THRESHOLD: f64 = 0.01;

/// Result of the adaptive experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// First (fully speculative) run.
    pub first: WorkloadRun,
    /// Second run after recompiling high-abort methods.
    pub second: WorkloadRun,
    /// Methods that were de-speculated.
    pub recompiled: Vec<MethodId>,
}

/// Runs `w` under `ccfg`, identifies methods whose regions exceed the abort
/// threshold, recompiles them without regions, and re-runs.
///
/// # Panics
/// Panics if either run diverges from the interpreter's checksum.
pub fn run_adaptive(
    w: &Workload,
    profiled: &ProfiledWorkload,
    ccfg: &CompilerConfig,
    hw: &HwConfig,
) -> AdaptiveOutcome {
    let first = run_workload(w, profiled, ccfg, hw);

    // Diagnose: methods with any region whose abort rate exceeds the
    // threshold (the hardware reports which region aborted, §3.2).
    let mut offenders: HashSet<MethodId> = HashSet::new();
    for ((method, _region), c) in first.stats.per_region.iter() {
        if c.entries > 0 && c.aborts as f64 / c.entries as f64 > ABORT_RATE_THRESHOLD {
            offenders.insert(method);
        }
    }

    // Recompile: offenders fall back to the non-atomic pipeline.
    let fallback = CompilerConfig::no_atomic();
    let mut code = CodeCache::new();
    for m in w.program.method_ids() {
        let cfg = if offenders.contains(&m) {
            &fallback
        } else {
            ccfg
        };
        let c = compile_method(&w.program, &profiled.profile, m, cfg);
        code.install(m, lower(&c.func));
    }
    let mut mach = Machine::new(&w.program, &code, hw.clone());
    mach.set_fuel(w.fuel.saturating_mul(4));
    mach.run(&[])
        .unwrap_or_else(|e| panic!("adaptive rerun of {} failed: {e}", w.name));
    assert_eq!(
        mach.env.checksum(),
        profiled.reference_checksum,
        "adaptive recompilation broke {}",
        w.name
    );

    let stats = mach.stats().clone();
    let pred = mach.way_pred_stats();
    let samples =
        extract_samples(w, &stats).unwrap_or_else(|e| panic!("adaptive rerun of {}: {e}", w.name));
    let second = WorkloadRun {
        workload: first.workload,
        compiler: "adaptive",
        hardware: first.hardware,
        stats,
        samples,
        static_uops: code.static_uops(),
        pred,
    };
    let mut recompiled: Vec<MethodId> = offenders.into_iter().collect();
    recompiled.sort();
    AdaptiveOutcome {
        first,
        second,
        recompiled,
    }
}
