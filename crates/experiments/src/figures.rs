//! Regenerators for every table and figure in the paper's evaluation,
//! rendered alongside the paper's reported values.

use hasp_hw::{HwConfig, UOP_CLASSES};
use hasp_opt::CompilerConfig;

use crate::report::{num, pct, Table};
use crate::suite::{MatrixCell, Suite};

/// Prefetches the (all workloads × `compilers` × `hws`) block through the
/// suite's parallel pipeline; the per-row `suite.run` calls below then hit
/// the cache.
fn prefetch(suite: &mut Suite, compilers: &[CompilerConfig], hws: &[HwConfig]) {
    let cells: Vec<MatrixCell> = (0..suite.workloads().len())
        .flat_map(|i| {
            compilers
                .iter()
                .flat_map(move |c| hws.iter().map(move |h| (i, c.clone(), h.clone())))
        })
        .collect();
    suite.run_all(&cells);
}

/// The benchmarks in Table 2 order with the paper's sample counts.
pub const BENCHMARKS: [(&str, usize); 7] = [
    ("antlr", 4),
    ("bloat", 4),
    ("fop", 2),
    ("hsqldb", 1),
    ("jython", 1),
    ("pmd", 4),
    ("xalan", 1),
];

/// Paper Figure 7 speedups, % over `no-atomic` (read off the figure, so
/// approximate): (atomic, no-atomic+aggr, atomic+aggr).
pub const PAPER_FIG7: [(&str, f64, f64, f64); 7] = [
    ("antlr", 12.0, 5.0, 25.0),
    ("bloat", 18.0, 12.0, 32.0),
    ("fop", 2.0, 2.0, 5.0),
    ("hsqldb", 25.0, 15.0, 56.0),
    ("jython", -9.0, 12.0, 35.0),
    ("pmd", -2.0, 2.0, 2.0),
    ("xalan", 18.0, 8.0, 30.0),
];

/// Paper Table 3 (exact): coverage %, unique regions, avg size, abort %,
/// aborts per 1k uops — for atomic+aggressive inlining.
pub const PAPER_TABLE3: [(&str, f64, u64, u64, f64, f64); 7] = [
    ("antlr", 9.0, 96, 47, 0.02, 0.0004),
    ("bloat", 69.0, 93, 128, 4.3, 0.12),
    ("fop", 20.0, 73, 32, 0.01, 0.0007),
    ("hsqldb", 76.0, 75, 88, 2.74, 0.24),
    ("jython", 87.0, 14, 227, 0.69, 0.27),
    ("pmd", 32.0, 32, 42, 2.2, 0.18),
    ("xalan", 78.0, 37, 78, 0.28, 0.03),
];

/// One benchmark's Figure 7 measurements.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Benchmark name.
    pub workload: &'static str,
    /// `atomic` speedup %.
    pub atomic: f64,
    /// `no-atomic+aggr-inline` speedup %.
    pub no_atomic_aggr: f64,
    /// `atomic+aggr-inline` speedup %.
    pub atomic_aggr: f64,
    /// `atomic` with forced dominant-receiver devirtualization (the grey
    /// bar; measured for jython).
    pub forced_mono: Option<f64>,
}

/// Figure 7: execution-time speedups over the `no-atomic` binary.
pub fn fig7(suite: &mut Suite) -> (Vec<Fig7Row>, String) {
    let base_cfg = CompilerConfig::no_atomic();
    let hw = HwConfig::baseline();
    prefetch(
        suite,
        &[
            CompilerConfig::no_atomic(),
            CompilerConfig::atomic(),
            CompilerConfig::no_atomic_aggressive(),
            CompilerConfig::atomic_aggressive(),
        ],
        std::slice::from_ref(&hw),
    );
    let jython = suite.index_of("jython");
    suite.run_all(&[(jython, CompilerConfig::atomic_forced_mono(), hw.clone())]);
    let mut rows = Vec::new();
    for i in 0..suite.workloads().len() {
        let name = suite.workloads()[i].name;
        let base = suite.run(i, &base_cfg, &hw).clone();
        let atomic = suite
            .run(i, &CompilerConfig::atomic(), &hw)
            .speedup_vs(&base);
        let na = suite
            .run(i, &CompilerConfig::no_atomic_aggressive(), &hw)
            .speedup_vs(&base);
        let aa = suite
            .run(i, &CompilerConfig::atomic_aggressive(), &hw)
            .speedup_vs(&base);
        let forced = if name == "jython" {
            Some(
                suite
                    .run(i, &CompilerConfig::atomic_forced_mono(), &hw)
                    .speedup_vs(&base),
            )
        } else {
            None
        };
        rows.push(Fig7Row {
            workload: name,
            atomic,
            no_atomic_aggr: na,
            atomic_aggr: aa,
            forced_mono: forced,
        });
    }
    let mut t = Table::new(
        "Figure 7 — speedup over no-atomic (measured | paper≈)",
        &[
            "bench",
            "atomic",
            "noatom+aggr",
            "atomic+aggr",
            "forced-mono",
            "paper a/na/aa",
        ],
    );
    for r in &rows {
        let paper = PAPER_FIG7.iter().find(|p| p.0 == r.workload).unwrap();
        t.row(&[
            r.workload.to_string(),
            pct(r.atomic),
            pct(r.no_atomic_aggr),
            pct(r.atomic_aggr),
            r.forced_mono.map(pct).unwrap_or_else(|| "-".into()),
            format!("{:+.0}/{:+.0}/{:+.0}", paper.1, paper.2, paper.3),
        ]);
    }
    let n = rows.len() as f64;
    let avg = |f: fn(&Fig7Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    t.row(&[
        "average".into(),
        pct(avg(|r| r.atomic)),
        pct(avg(|r| r.no_atomic_aggr)),
        pct(avg(|r| r.atomic_aggr)),
        "-".into(),
        "+10/+8/+25".into(),
    ]);
    (rows, t.render())
}

/// One benchmark's Figure 8 measurements (uop reduction %).
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Benchmark name.
    pub workload: &'static str,
    /// `atomic` reduction %.
    pub atomic: f64,
    /// `no-atomic+aggr-inline` reduction %.
    pub no_atomic_aggr: f64,
    /// `atomic+aggr-inline` reduction %.
    pub atomic_aggr: f64,
}

/// Figure 8: micro-operation reduction over the `no-atomic` binary.
pub fn fig8(suite: &mut Suite) -> (Vec<Fig8Row>, String) {
    let base_cfg = CompilerConfig::no_atomic();
    let hw = HwConfig::baseline();
    prefetch(
        suite,
        &[
            CompilerConfig::no_atomic(),
            CompilerConfig::atomic(),
            CompilerConfig::no_atomic_aggressive(),
            CompilerConfig::atomic_aggressive(),
        ],
        std::slice::from_ref(&hw),
    );
    let mut rows = Vec::new();
    for i in 0..suite.workloads().len() {
        let base = suite.run(i, &base_cfg, &hw).clone();
        rows.push(Fig8Row {
            workload: suite.workloads()[i].name,
            atomic: suite
                .run(i, &CompilerConfig::atomic(), &hw)
                .uop_reduction_vs(&base),
            no_atomic_aggr: suite
                .run(i, &CompilerConfig::no_atomic_aggressive(), &hw)
                .uop_reduction_vs(&base),
            atomic_aggr: suite
                .run(i, &CompilerConfig::atomic_aggressive(), &hw)
                .uop_reduction_vs(&base),
        });
    }
    let mut t = Table::new(
        "Figure 8 — uop reduction over no-atomic (paper avg ≈ 11%, antlr 17%)",
        &["bench", "atomic", "noatom+aggr", "atomic+aggr"],
    );
    for r in &rows {
        t.row(&[
            r.workload.to_string(),
            pct(r.atomic),
            pct(r.no_atomic_aggr),
            pct(r.atomic_aggr),
        ]);
    }
    let n = rows.len() as f64;
    t.row(&[
        "average".into(),
        pct(rows.iter().map(|r| r.atomic).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.no_atomic_aggr).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.atomic_aggr).sum::<f64>() / n),
    ]);
    (rows, t.render())
}

/// One benchmark's Table 3 measurements.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Benchmark name.
    pub workload: &'static str,
    /// Fraction of uops inside atomic regions.
    pub coverage: f64,
    /// Unique static regions executed.
    pub unique: usize,
    /// Average dynamic region size (uops).
    pub size: f64,
    /// Percentage of regions aborting.
    pub abort_pct: f64,
    /// Aborts per 1000 uops.
    pub aborts_per_kuop: f64,
}

/// Table 3: atomic-region statistics under atomic+aggressive inlining.
pub fn table3(suite: &mut Suite) -> (Vec<Table3Row>, String) {
    let cfg = CompilerConfig::atomic_aggressive();
    let hw = HwConfig::baseline();
    prefetch(suite, std::slice::from_ref(&cfg), std::slice::from_ref(&hw));
    let mut rows = Vec::new();
    for i in 0..suite.workloads().len() {
        let run = suite.run(i, &cfg, &hw);
        rows.push(Table3Row {
            workload: run.workload,
            coverage: run.stats.coverage() * 100.0,
            unique: run.stats.unique_regions(),
            size: run.stats.avg_region_size(),
            abort_pct: run.stats.abort_rate() * 100.0,
            aborts_per_kuop: run.stats.aborts_per_kuop(),
        });
    }
    let mut t = Table::new(
        "Table 3 — atomic region statistics (measured | paper)",
        &[
            "bench",
            "coverage",
            "unique",
            "size",
            "abort%",
            "/1k-uop",
            "paper cov/size/abort%",
        ],
    );
    for r in &rows {
        let p = PAPER_TABLE3.iter().find(|p| p.0 == r.workload).unwrap();
        t.row(&[
            r.workload.to_string(),
            format!("{:.0}%", r.coverage),
            r.unique.to_string(),
            num(r.size, 0),
            num(r.abort_pct, 2),
            num(r.aborts_per_kuop, 4),
            format!("{:.0}%/{}/{}", p.1, p.3, p.4),
        ]);
    }
    (rows, t.render())
}

/// One benchmark's Figure 9 measurements.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Benchmark name.
    pub workload: &'static str,
    /// Speedup with the checkpoint substrate (no overhead).
    pub chkpt: f64,
    /// Speedup with a 20-cycle `aregion_begin` stall.
    pub begin_overhead: f64,
    /// Speedup with a single region in flight.
    pub single_inflight: f64,
}

/// Figure 9: sensitivity to the hardware implementation of atomicity.
/// All rows run the atomic+aggressive-inlining code.
pub fn fig9(suite: &mut Suite) -> (Vec<Fig9Row>, String) {
    let base_cfg = CompilerConfig::no_atomic();
    let cfg = CompilerConfig::atomic_aggressive();
    let base_hw = HwConfig::baseline();
    prefetch(
        suite,
        std::slice::from_ref(&base_cfg),
        std::slice::from_ref(&base_hw),
    );
    prefetch(
        suite,
        std::slice::from_ref(&cfg),
        &[
            base_hw.clone(),
            HwConfig::with_begin_overhead(),
            HwConfig::single_inflight(),
        ],
    );
    let mut rows = Vec::new();
    for i in 0..suite.workloads().len() {
        let base = suite.run(i, &base_cfg, &base_hw).clone();
        let chkpt = suite.run(i, &cfg, &base_hw).speedup_vs(&base);
        let stall = suite
            .run(i, &cfg, &HwConfig::with_begin_overhead())
            .speedup_vs(&base);
        let single = suite
            .run(i, &cfg, &HwConfig::single_inflight())
            .speedup_vs(&base);
        rows.push(Fig9Row {
            workload: suite.workloads()[i].name,
            chkpt,
            begin_overhead: stall,
            single_inflight: single,
        });
    }
    let mut t = Table::new(
        "Figure 9 — sensitivity to atomicity implementation (paper: overheads \
         erase the benefit; antlr least sensitive)",
        &["bench", "chkpt", "+20-cycle", "single-inflight"],
    );
    for r in &rows {
        t.row(&[
            r.workload.to_string(),
            pct(r.chkpt),
            pct(r.begin_overhead),
            pct(r.single_inflight),
        ]);
    }
    let n = rows.len() as f64;
    t.row(&[
        "average".into(),
        pct(rows.iter().map(|r| r.chkpt).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.begin_overhead).sum::<f64>() / n),
        pct(rows.iter().map(|r| r.single_inflight).sum::<f64>() / n),
    ]);
    (rows, t.render())
}

/// §6.2 aggregates: region size vs the 128-entry window, and footprint vs
/// the cache.
#[derive(Debug, Clone, Copy)]
pub struct Sec62 {
    /// Fraction of committed regions larger than the 128-entry window.
    pub frac_over_window: f64,
    /// Largest committed region (uops).
    pub max_region_uops: u64,
    /// Fraction of regions touching ≤ 10 cache lines.
    pub frac_le_10_lines: f64,
    /// Fraction of regions touching ≤ 50 cache lines.
    pub frac_le_50_lines: f64,
    /// Total overflow aborts across the suite.
    pub overflows: u64,
    /// Total committed regions across the suite.
    pub regions: u64,
}

/// §6.2: architectural analysis of the regions (ROB occupancy, data
/// footprint).
pub fn sec62(suite: &mut Suite) -> (Sec62, String) {
    let cfg = CompilerConfig::atomic_aggressive();
    let hw = HwConfig::baseline();
    prefetch(suite, std::slice::from_ref(&cfg), std::slice::from_ref(&hw));
    let mut sizes = hasp_hw::Histogram::new(&[16, 32, 64, 128, 256, 512, 1024]);
    let mut feet = hasp_hw::Histogram::new(&[1, 2, 4, 8, 10, 16, 32, 50, 100, 128]);
    let mut overflows = 0;
    for i in 0..suite.workloads().len() {
        let run = suite.run(i, &cfg, &hw);
        let s = &run.stats.region_sizes;
        for (bi, c) in s.counts.iter().enumerate() {
            // Merge by replaying bucket midpoints (bounds are identical).
            let v = if bi < s.bounds.len() {
                s.bounds[bi]
            } else {
                s.max.max(2048)
            };
            for _ in 0..*c {
                sizes.record(v);
            }
        }
        let f = &run.stats.region_footprint;
        for (bi, c) in f.counts.iter().enumerate() {
            let v = if bi < f.bounds.len() {
                f.bounds[bi]
            } else {
                f.max.max(256)
            };
            for _ in 0..*c {
                feet.record(v);
            }
        }
        overflows += run.stats.aborts.get(hasp_hw::AbortReason::Overflow);
    }
    let data = Sec62 {
        frac_over_window: 1.0 - sizes.fraction_le(128),
        max_region_uops: sizes.max,
        frac_le_10_lines: feet.fraction_le(10),
        frac_le_50_lines: feet.fraction_le(50),
        overflows,
        regions: sizes.n,
    };
    let mut t = Table::new(
        "§6.2 — region size & footprint (paper: ~25% exceed the 128-entry \
         window; most regions <10 lines; 50 lines covers 99%; ~1 overflow per \
         1.7M regions)",
        &["metric", "measured"],
    );
    t.row(&[
        ">128-uop regions".into(),
        format!("{:.1}%", data.frac_over_window * 100.0),
    ]);
    t.row(&[
        "largest region (uops)".into(),
        data.max_region_uops.to_string(),
    ]);
    t.row(&[
        "footprint ≤10 lines".into(),
        format!("{:.1}%", data.frac_le_10_lines * 100.0),
    ]);
    t.row(&[
        "footprint ≤50 lines".into(),
        format!("{:.1}%", data.frac_le_50_lines * 100.0),
    ]);
    t.row(&["overflow aborts".into(), data.overflows.to_string()]);
    t.row(&["committed regions".into(), data.regions.to_string()]);
    (data, t.render())
}

/// §6.3 many-core data: speedups on narrower machines.
#[derive(Debug, Clone, Copy)]
pub struct Sec63Row {
    /// Benchmark name.
    pub workload: &'static str,
    /// Speedup on the 4-wide baseline.
    pub four_wide: f64,
    /// Speedup on the 2-wide machine.
    pub two_wide: f64,
    /// Speedup on the 2-wide half-structures machine.
    pub two_wide_half: f64,
}

/// §6.3: the relative speedups closely track the 4-wide results on 2-wide
/// machines ("generally within a percent or two").
pub fn sec63(suite: &mut Suite) -> (Vec<Sec63Row>, String) {
    let base_cfg = CompilerConfig::no_atomic();
    let cfg = CompilerConfig::atomic_aggressive();
    prefetch(
        suite,
        &[base_cfg.clone(), cfg.clone()],
        &[
            HwConfig::baseline(),
            HwConfig::two_wide(),
            HwConfig::two_wide_half(),
        ],
    );
    let mut rows = Vec::new();
    for i in 0..suite.workloads().len() {
        let mut per_hw = [0.0f64; 3];
        for (k, hw) in [
            HwConfig::baseline(),
            HwConfig::two_wide(),
            HwConfig::two_wide_half(),
        ]
        .into_iter()
        .enumerate()
        {
            let base = suite.run(i, &base_cfg, &hw).clone();
            per_hw[k] = suite.run(i, &cfg, &hw).speedup_vs(&base);
        }
        rows.push(Sec63Row {
            workload: suite.workloads()[i].name,
            four_wide: per_hw[0],
            two_wide: per_hw[1],
            two_wide_half: per_hw[2],
        });
    }
    let mut t = Table::new(
        "§6.3 — many-core machines (paper: tracks 4-wide within a couple %)",
        &["bench", "4-wide", "2-wide", "2-wide-half"],
    );
    for r in &rows {
        t.row(&[
            r.workload.to_string(),
            pct(r.four_wide),
            pct(r.two_wide),
            pct(r.two_wide_half),
        ]);
    }
    (rows, t.render())
}

/// Figure 1-style complexity metrics for the jython hot loop.
#[derive(Debug, Clone, Copy)]
pub struct Fig1 {
    /// Static ops on the hot path in the baseline compile.
    pub baseline_hot_ops: u64,
    /// Conditional branches on the baseline hot path.
    pub baseline_hot_branches: usize,
    /// Static ops on the speculative (in-region) path.
    pub region_ops: u64,
    /// Branches remaining inside regions.
    pub region_branches: usize,
    /// Asserts replacing cold-path branches.
    pub asserts: usize,
}

/// Figure 1: CFG complexity of the jython hot loop, baseline vs atomic
/// regions (paper: 109 branches and >600 instructions on the hot path;
/// aggressive speculation removes more than two-thirds).
pub fn fig1(suite: &mut Suite) -> (Fig1, String) {
    let i = suite
        .workloads()
        .iter()
        .position(|w| w.name == "jython")
        .expect("jython present");
    let w = &suite.workloads()[i];
    let profile = &suite.profile(i).profile;

    let count_hot = |f: &hasp_ir::Func| -> (u64, usize) {
        let max = f
            .block_ids()
            .iter()
            .map(|b| f.block(*b).freq)
            .max()
            .unwrap_or(0);
        let mut ops = 0;
        let mut branches = 0;
        for b in f.block_ids() {
            let blk = f.block(b);
            if max > 0 && blk.freq >= max / 100 {
                ops += blk.insts.len() as u64 + 1;
                if matches!(
                    blk.term,
                    hasp_ir::Term::Branch { .. } | hasp_ir::Term::Switch { .. }
                ) {
                    branches += 1;
                }
            }
        }
        (ops, branches)
    };

    let entry = w.program.entry();
    let base = hasp_opt::compile_method(&w.program, profile, entry, &CompilerConfig::no_atomic());
    let (base_ops, base_branches) = count_hot(&base.func);

    let atom = hasp_opt::compile_method(
        &w.program,
        profile,
        entry,
        &CompilerConfig::atomic_aggressive(),
    );
    let stats = hasp_core::StaticRegionStats::collect(&atom.func);

    let data = Fig1 {
        baseline_hot_ops: base_ops,
        baseline_hot_branches: base_branches,
        region_ops: stats.region_ops,
        region_branches: stats.region_branches,
        asserts: stats.asserts,
    };
    let mut t = Table::new(
        "Figure 1 — jython hot-loop CFG complexity (paper: 109 branches, \
         >600 insts; regions isolate the hot path behind asserts)",
        &["metric", "baseline hot path", "atomic regions"],
    );
    t.row(&[
        "static ops".into(),
        data.baseline_hot_ops.to_string(),
        data.region_ops.to_string(),
    ]);
    t.row(&[
        "branches".into(),
        data.baseline_hot_branches.to_string(),
        data.region_branches.to_string(),
    ]);
    t.row(&["asserts".into(), "0".into(), data.asserts.to_string()]);
    (data, t.render())
}

/// One benchmark's retired-uop instruction mix (% of retired uops per
/// class, in [`UOP_CLASSES`] order).
#[derive(Debug, Clone, Copy)]
pub struct UopMixRow {
    /// Benchmark name.
    pub workload: &'static str,
    /// Per-class share of retired uops, percent, in [`UOP_CLASSES`] order.
    pub shares: [f64; UOP_CLASSES.len()],
    /// Total retired uops.
    pub total: u64,
}

/// Instruction-mix table: retired uops by class under atomic+aggressive
/// inlining (the paper-style dynamic-instruction breakdown backing the
/// Figure 8 uop-reduction discussion).
pub fn uop_mix(suite: &mut Suite) -> (Vec<UopMixRow>, String) {
    let cfg = CompilerConfig::atomic_aggressive();
    let hw = HwConfig::baseline();
    prefetch(suite, std::slice::from_ref(&cfg), std::slice::from_ref(&hw));
    let mut rows = Vec::new();
    for i in 0..suite.workloads().len() {
        let run = suite.run(i, &cfg, &hw);
        let total = run.stats.uop_classes.total();
        let mut shares = [0.0f64; UOP_CLASSES.len()];
        for (k, &class) in UOP_CLASSES.iter().enumerate() {
            if total > 0 {
                shares[k] = run.stats.uop_classes.get(class) as f64 * 100.0 / total as f64;
            }
        }
        rows.push(UopMixRow {
            workload: run.workload,
            shares,
            total,
        });
    }
    let mut header: Vec<&str> = vec!["bench"];
    header.extend(UOP_CLASSES.iter().map(|c| c.name()));
    header.push("uops");
    let mut t = Table::new(
        "Instruction mix — retired uops by class (atomic+aggr-inline)",
        &header,
    );
    for r in &rows {
        let mut cells = vec![r.workload.to_string()];
        cells.extend(r.shares.iter().map(|&s| format!("{s:.1}%")));
        cells.push(r.total.to_string());
        t.row(&cells);
    }
    (rows, t.render())
}

/// Table 2: the benchmark roster.
pub fn table2(suite: &Suite) -> String {
    let mut t = Table::new(
        "Table 2 — DaCapo benchmarks",
        &["bench", "#samples", "description"],
    );
    for w in suite.workloads() {
        let desc: String = w.description.chars().take(60).collect();
        t.row(&[w.name.to_string(), w.sample_count().to_string(), desc]);
    }
    t.render()
}
