//! Adaptive region re-formation: the software half of the governor ladder.
//!
//! When a region keeps aborting on its own footprint (`Overflow`) or a
//! failed assertion (`Explicit`), backing off harder does not help — the
//! region is *shaped wrong*. The hardware governor reports this as a
//! [`ReformRequest`] naming the region's formation boundary; this module
//! drains those requests between run quanta, re-runs region formation with
//! the offending boundaries excluded (`RegionConfig::excluded_boundaries`
//! via `CompilerConfig::exclude`), recompiles through the normal
//! `hasp_opt` pipeline, and re-runs the workload on the new code. The
//! region either re-forms with a different (viable) shape or dissolves
//! into non-speculative code, and the method's remaining regions resume at
//! tier 0 — instead of one pathological region pinning the whole method on
//! the software path forever.
//!
//! The machine borrows its code cache immutably for a whole run, so
//! re-formation is quantized: each quantum is one complete run (fresh
//! machine, fresh governor state), and the loop stops when a quantum emits
//! no boundary it has not already excluded (or at [`MAX_QUANTA`]).

use std::collections::BTreeSet;

use hasp_hw::{HwConfig, Machine, ReformRequest};
use hasp_opt::CompilerConfig;
use hasp_workloads::Workload;

use crate::runner::{compile_workload, CellError, ProfiledWorkload};

/// Quantum cap of the re-formation loop. Each quantum excludes at least
/// one new boundary or ends the loop, so this only bounds pathological
/// programs where formation keeps finding fresh doomed shapes.
pub const MAX_QUANTA: usize = 6;

/// One complete run of the re-formation loop (compile → run → drain).
#[derive(Debug, Clone)]
pub struct ReformQuantum {
    /// 0-based quantum ordinal.
    pub quantum: usize,
    /// Regions committed during this quantum.
    pub commits: u64,
    /// Regions aborted (all reasons) during this quantum.
    pub aborts: u64,
    /// Re-formation requests the governor emitted during this quantum.
    pub requests: Vec<ReformRequest>,
    /// Total boundaries excluded after draining this quantum's requests.
    pub excluded_after: usize,
}

/// The re-formation loop's outcome for one workload.
#[derive(Debug, Clone)]
pub struct ReformOutcome {
    /// Workload name.
    pub workload: &'static str,
    /// Every quantum, in order. At least one (the initial run).
    pub quanta: Vec<ReformQuantum>,
    /// `(method, boundary)` pairs excluded across all quanta — the
    /// re-formations actually performed.
    pub excluded: Vec<(u32, u32)>,
    /// Region commits inside re-formed methods during the *final* quantum:
    /// the evidence that re-formation recovered speculation instead of
    /// just turning it off.
    pub post_reform_commits: u64,
    /// At least one re-formation happened and the re-formed methods still
    /// committed regions afterwards.
    pub recovered: bool,
    /// The final quantum emitted no re-formation requests (the loop ended
    /// by convergence, not the quantum cap).
    pub converged: bool,
    /// A quantum failed (machine fault or checksum divergence); the fields
    /// above describe the quanta that did complete.
    pub error: Option<CellError>,
}

/// Runs one quantum: executes already-compiled code under `hw` on a fresh
/// machine, checks checksum equivalence, and drains the governor's
/// re-formation requests.
fn run_quantum(
    w: &Workload,
    profiled: &ProfiledWorkload,
    code: &hasp_hw::CodeCache,
    hw: &HwConfig,
) -> Result<(hasp_hw::RunStats, Vec<ReformRequest>), CellError> {
    let mut mach = Machine::new(&w.program, code, hw.clone());
    mach.set_fuel(w.fuel.saturating_mul(4));
    mach.run(&[])?;
    if mach.env.checksum() != profiled.reference_checksum {
        return Err(CellError::ChecksumDivergence {
            expected: profiled.reference_checksum,
            got: mach.env.checksum(),
        });
    }
    let requests = mach.take_reform_requests();
    Ok((mach.stats().clone(), requests))
}

/// Drives the compile → run → drain → re-form loop for one workload.
///
/// `ccfg` is the starting compiler configuration (its exclusion map is the
/// loop's starting point, normally empty); `hw` should have the governor
/// ladder online and a `reform_budget` > 0, or no requests will ever be
/// emitted and the loop degenerates to a single quantum.
pub fn run_reform_quanta(
    w: &Workload,
    profiled: &ProfiledWorkload,
    ccfg: &CompilerConfig,
    hw: &HwConfig,
) -> ReformOutcome {
    let mut ccfg = ccfg.clone();
    let mut excluded: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut out = ReformOutcome {
        workload: w.name,
        quanta: Vec::new(),
        excluded: Vec::new(),
        post_reform_commits: 0,
        recovered: false,
        converged: false,
        error: None,
    };
    for quantum in 0..MAX_QUANTA {
        let compiled = compile_workload(w, profiled, &ccfg);
        let (stats, requests) = match run_quantum(w, profiled, &compiled.code, hw) {
            Ok(r) => r,
            Err(e) => {
                out.error = Some(e);
                return out;
            }
        };
        // Post-reform evidence: commits in regions of methods that were
        // re-formed in an *earlier* quantum (entries each end in exactly
        // one commit or abort).
        if !excluded.is_empty() {
            out.post_reform_commits = stats
                .per_region
                .iter()
                .filter(|((m, _), _)| excluded.iter().any(|&(em, _)| em == m.0))
                .map(|(_, c)| c.entries - c.aborts)
                .sum();
        }
        // Drain: every request naming a boundary we have not excluded yet
        // becomes a new exclusion. Requests without a boundary map
        // (`u32::MAX`) cannot be acted on.
        let mut fresh = false;
        for r in &requests {
            if r.boundary != u32::MAX && excluded.insert((r.method.0, r.boundary)) {
                ccfg.exclude(r.method, [r.boundary]);
                fresh = true;
            }
        }
        out.quanta.push(ReformQuantum {
            quantum,
            commits: stats.commits,
            aborts: stats.total_aborts(),
            requests,
            excluded_after: excluded.len(),
        });
        if !fresh {
            out.converged = out.quanta.last().is_some_and(|q| q.requests.is_empty());
            break;
        }
    }
    out.excluded = excluded.into_iter().collect();
    out.recovered = !out.excluded.is_empty() && out.post_reform_commits > 0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::campaign_hw;
    use crate::runner::profile_workload;
    use hasp_hw::{FaultKind, FaultPlan};
    use hasp_workloads::synthetic;

    /// The full reform-and-recover path: the fat-footprint adversary keeps
    /// overflowing a small line budget, the governor requests re-formation,
    /// the harness excludes the boundary and recompiles, and the lean
    /// region still commits afterwards.
    #[test]
    fn adversary_reforms_and_recovers() {
        let w = synthetic::footprint_split(2_000);
        let profiled = profile_workload(&w);
        let hw = campaign_hw(FaultKind::Overflow.plan(8));
        let out = run_reform_quanta(&w, &profiled, &CompilerConfig::atomic(), &hw);
        assert!(out.error.is_none(), "quantum failed: {:?}", out.error);
        assert!(out.quanta.len() >= 2, "must re-form at least once");
        assert!(
            !out.excluded.is_empty(),
            "the overflowing region must be excluded"
        );
        assert!(
            out.post_reform_commits > 0,
            "re-formed method must still commit regions"
        );
        assert!(out.recovered);
        // The first quantum actually exercised the ladder, not just the
        // reform path.
        let q0 = &out.quanta[0];
        assert!(q0.aborts > 0 && !q0.requests.is_empty());
    }

    /// A clean run converges immediately: one quantum, no requests, no
    /// exclusions — re-formation is inert on healthy code.
    #[test]
    fn healthy_workload_converges_in_one_quantum() {
        let w = synthetic::add_element(1_000);
        let profiled = profile_workload(&w);
        let hw = campaign_hw(FaultPlan::none());
        let out = run_reform_quanta(&w, &profiled, &CompilerConfig::atomic(), &hw);
        assert!(out.error.is_none());
        assert_eq!(out.quanta.len(), 1);
        assert!(out.converged);
        assert!(out.excluded.is_empty());
        assert!(!out.recovered);
    }
}
