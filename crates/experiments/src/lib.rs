//! # hasp-experiments — regenerating the paper's evaluation
//!
//! The §5 methodology (profile → compile → marker-bounded timing samples →
//! weighted per-phase reporting) and regenerators for every table and figure
//! of *Hardware Atomicity for Reliable Software Speculation* (ISCA 2007).
//! Every experiment run asserts bit-exact checksum equivalence between the
//! interpreter and the simulated machine, so the numbers can never come from
//! broken speculation.
//!
//! Run the `experiments` binary to print all tables:
//!
//! ```bash
//! cargo run --release -p hasp-experiments --bin experiments
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod dispatch_bench;
pub mod faults;
pub mod figures;
pub mod mt;
pub mod reform;
pub mod report;
pub mod runner;
pub mod service;
pub mod suite;

pub use dispatch_bench::{DispatchBenchReport, DispatchRow};
pub use faults::{
    run_campaign, run_knee, sweep_rates, CampaignReport, FaultCell, KneeReport, KneeRow,
    KNEE_RATE_CAP, KNEE_THRESHOLD,
};
pub use mt::{run_mt, MtContention, MtLeg, MtReport};
pub use reform::{run_reform_quanta, ReformOutcome, ReformQuantum, MAX_QUANTA};
pub use runner::{
    compile_workload, execute_compiled, profile_workload, run_workload, try_execute_compiled,
    try_execute_compiled_with, CellError, CompiledWorkload, ProfiledWorkload, SampleMeasure,
    WorkloadRun,
};
pub use service::{
    build_schedule, build_service_cache, build_tenants, run_leg, run_service, LegOutcome,
    LegSummary, ServiceCache, ServiceReport, Tenant, TenantClass, TenantShard, WorkerShard,
};
pub use suite::{hw_sweep, MatrixCell, Suite};
