//! Dumps a workload method's optimized CFG as Graphviz, with atomic regions
//! rendered as clusters (the Figure 1(d)/5(b) view).
//!
//! ```bash
//! cargo run --release -p hasp-experiments --bin dump_cfg jython atomic > jython.dot
//! dot -Tsvg jython.dot -o jython.svg
//! ```

use hasp_experiments::profile_workload;
use hasp_opt::{compile_method, CompilerConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "xalan".into());
    let cfgname = std::env::args().nth(2).unwrap_or_else(|| "atomic".into());
    let ws = hasp_workloads::all_workloads();
    let w = ws.iter().find(|w| w.name == name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; one of: antlr bloat fop hsqldb jython pmd xalan");
        std::process::exit(2);
    });
    let cfg = match cfgname.as_str() {
        "no-atomic" => CompilerConfig::no_atomic(),
        "aggr" => CompilerConfig::atomic_aggressive(),
        "mono" => CompilerConfig::atomic_forced_mono(),
        _ => CompilerConfig::atomic(),
    };
    let p = profile_workload(w);
    let c = compile_method(&w.program, &p.profile, w.program.entry(), &cfg);
    print!("{}", hasp_ir::dot::to_dot(&c.func));
    eprintln!(
        "// {} under {}: {} blocks, {} regions",
        w.name,
        cfg.name,
        c.func.block_ids().len(),
        c.func.regions.len()
    );
}
