//! Debug: inspect inlining/regions of a workload's main method.
use hasp_experiments::profile_workload;
use hasp_opt::{compile_method, CompilerConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hsqldb".into());
    let ws = hasp_workloads::all_workloads();
    let w = ws.iter().find(|w| w.name == name).expect("workload");
    let p = profile_workload(w);
    let entry = w.program.entry();
    let cfgname = std::env::args().nth(2).unwrap_or_else(|| "atomic".into());
    let cfg = match cfgname.as_str() {
        "aggr" => CompilerConfig::atomic_aggressive(),
        "mono" => CompilerConfig::atomic_forced_mono(),
        _ => CompilerConfig::atomic(),
    };
    let c = compile_method(&w.program, &p.profile, entry, &cfg);
    println!("sites: {}", c.sites.len());
    for s in &c.sites {
        println!(
            "  site callee={} budget={:?}",
            w.program.method(s.callee).name,
            s.budget
        );
    }
    if let Some(fm) = &c.formation {
        println!(
            "regions: {} pruned: {:?} despec: {:?}",
            fm.regions.len(),
            fm.pruned_sites,
            fm.despeculated_sites
        );
    }
    // remaining warm calls
    let f = &c.func;
    for b in f.block_ids() {
        if f.block(b).freq == 0 {
            continue;
        }
        for inst in &f.block(b).insts {
            match &inst.op {
                hasp_ir::Op::Call { method, .. } => println!(
                    "  warm call at {b} freq {} -> {}",
                    f.block(b).freq,
                    w.program.method(*method).name
                ),
                hasp_ir::Op::CallVirtual { .. } => {
                    println!("  warm vcall at {b} freq {}", f.block(b).freq)
                }
                _ => {}
            }
        }
    }
    println!("func size {}", f.size());
    for (i, r) in f.regions.iter().enumerate() {
        println!(
            "  region {i}: begin {:?} size_est {}",
            r.begin, r.size_estimate
        );
    }
}
