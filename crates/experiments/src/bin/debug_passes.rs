//! Debug: per-pass verification for every method of a workload.
use hasp_core::form_atomic_regions;
use hasp_experiments::profile_workload;
use hasp_ir::{translate, verify};
use hasp_opt::{constprop, dce, gvn, safepoint, simplify, sle, unroll, CompilerConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "antlr".into());
    let cfgname = std::env::args().nth(2).unwrap_or_else(|| "atomic".into());
    let ws = hasp_workloads::all_workloads();
    let w = ws.iter().find(|w| w.name == name).expect("workload");
    let p = profile_workload(w);
    let cfg = match cfgname.as_str() {
        "atomic" => CompilerConfig::atomic(),
        "aggr" => CompilerConfig::atomic_aggressive(),
        "mono" => CompilerConfig::atomic_forced_mono(),
        _ => CompilerConfig::no_atomic(),
    };
    for mid in w.program.method_ids() {
        let meth = w.program.method(mid);
        if meth.opaque {
            continue;
        }
        let mut f = translate(&w.program, mid, p.profile.method(mid));
        gvn::run(&mut f);
        constprop::run(&mut f);
        dce::run(&mut f);
        let sites = hasp_opt::inline::run(&mut f, &w.program, &p.profile, &cfg.inline);
        let check = |f: &hasp_ir::Func, stage: &str| {
            if let Err(e) = verify(f) {
                println!("method {} FAILS after {stage}: {e}", meth.name);
                if std::env::var("HASP_DUMP").is_ok() {
                    println!("{}", f.display());
                }
                std::process::exit(1);
            }
        };
        check(&f, "inline");
        if cfg.atomic {
            form_atomic_regions(&mut f, &sites, &cfg.region);
            check(&f, "formation");
            sle::run(&mut f);
            check(&f, "sle");
            safepoint::run(&mut f);
            check(&f, "safepoint");
            unroll::run(&mut f, &cfg.region);
            check(&f, "unroll");
        }
        for round in 0..3 {
            gvn::run(&mut f);
            check(&f, &format!("gvn{round}"));
            constprop::run(&mut f);
            check(&f, &format!("constprop{round}"));
            dce::run(&mut f);
            check(&f, &format!("dce{round}"));
            simplify::run(&mut f);
            check(&f, &format!("simplify{round}"));
        }
        println!("method {} ok", meth.name);
    }
}
