//! Debug helper: per-config machine statistics for one workload.
use hasp_experiments::{profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hsqldb".into());
    let ws = hasp_workloads::all_workloads();
    let w = ws.iter().find(|w| w.name == name).expect("workload");
    let p = profile_workload(w);
    for cfg in [
        CompilerConfig::no_atomic(),
        CompilerConfig::atomic(),
        CompilerConfig::no_atomic_aggressive(),
        CompilerConfig::atomic_aggressive(),
    ] {
        let r = run_workload(w, &p, &cfg, &HwConfig::baseline());
        let s = &r.stats;
        println!(
            "{:22} uops {:9} cyc {:9} | br {:8} miss {:7} ind {:7}/{:6} | l1 {:8} l2 {:6} mem {:6} | commits {:7} aborts {:5} cov {:.2} size {:.0} static {:6}",
            cfg.name, s.uops, s.cycles, s.branches, s.mispredicts, s.indirects,
            s.indirect_misses, s.l1_hits, s.l2_hits,
            s.mem_accesses - s.l1_hits - s.l2_hits,
            s.commits, s.total_aborts(), s.coverage(), s.avg_region_size(), r.static_uops,
        );
        let mut sites: Vec<_> = s.mispredict_sites.iter().collect();
        sites.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        for ((mth, pc), n) in sites.into_iter().take(4) {
            println!("      miss site m{mth}:{pc} = {n}");
        }
    }
}
