//! Debug helper: per-config machine statistics for one workload.
use hasp_experiments::{compile_workload, profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hsqldb".into());
    let ws = hasp_workloads::all_workloads();
    let w = ws.iter().find(|w| w.name == name).expect("workload");
    let p = profile_workload(w);
    for cfg in [
        CompilerConfig::no_atomic(),
        CompilerConfig::atomic(),
        CompilerConfig::no_atomic_aggressive(),
        CompilerConfig::atomic_aggressive(),
    ] {
        let t0 = std::time::Instant::now();
        let r = run_workload(w, &p, &cfg, &HwConfig::baseline());
        let wall = t0.elapsed().as_secs_f64();
        let s = &r.stats;
        println!(
            "{:22} uops {:9} cyc {:9} | br {:8} miss {:7} ind {:7}/{:6} | l1 {:8} l2 {:6} mem {:6} | commits {:7} aborts {:5} cov {:.2} size {:.0} static {:6} | {:6.2}M uops/s",
            cfg.name, s.uops, s.cycles, s.branches, s.mispredicts, s.indirects,
            s.indirect_misses, s.l1_hits, s.l2_hits,
            s.mem_accesses - s.l1_hits - s.l2_hits,
            s.commits, s.total_aborts(), s.coverage(), s.avg_region_size(), r.static_uops,
            s.uops as f64 / wall / 1e6,
        );
        let mix: Vec<String> = s
            .uop_classes
            .iter_nonzero()
            .map(|(c, n)| format!("{} {}", c.name(), n))
            .collect();
        println!("      mix: {}", mix.join(" | "));
        let mut sites: Vec<_> = s.mispredict_sites.iter().collect();
        sites.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        for ((mth, pc), n) in sites.into_iter().take(4) {
            println!("      miss site m{mth}:{pc} = {n}");
        }
        let compiled = compile_workload(w, &p, &cfg);
        let mut methods: Vec<_> = compiled.code.iter().collect();
        methods.sort_by_key(|(m, _)| m.0);
        for (m, c) in methods {
            println!(
                "      method m{} {:24} uops {:5} regs {:4}",
                m.0,
                c.name,
                c.uops.len(),
                c.regs
            );
        }
    }
}
