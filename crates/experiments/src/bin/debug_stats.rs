//! Debug helper: per-config machine statistics for one workload, executed
//! on *both* dispatch engines with a field-by-field stats diff — the
//! first tool to reach for when `tests/dispatch_equivalence.rs` fails or
//! the dispatch benchmark regresses.
//!
//! Usage: `debug_stats [workload]` (default `hsqldb`).
use hasp_experiments::{compile_workload, profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hsqldb".into());
    let ws = hasp_workloads::all_workloads();
    let w = ws.iter().find(|w| w.name == name).expect("workload");
    let p = profile_workload(w);
    for cfg in [
        CompilerConfig::no_atomic(),
        CompilerConfig::atomic(),
        CompilerConfig::no_atomic_aggressive(),
        CompilerConfig::atomic_aggressive(),
    ] {
        // Same compiled code, both engines: any stats difference below is a
        // dispatch bug, not a compiler one.
        let timed = |hw: &HwConfig| {
            let t0 = std::time::Instant::now();
            let r = run_workload(w, &p, &cfg, hw);
            (r, t0.elapsed().as_secs_f64())
        };
        let (sb, sb_wall) = timed(&HwConfig::baseline());
        let (pu, pu_wall) = timed(&HwConfig::per_uop());
        let s = &sb.stats;
        println!(
            "{:22} uops {:9} cyc {:9} | br {:8} miss {:7} ind {:7}/{:6} | l1 {:8} l2 {:6} mem {:6} | commits {:7} aborts {:5} cov {:.2} size {:.0} fp {:.0}/{:4} static {:6} | sb {:6.2}M uops/s, per-uop {:6.2}M ({:.2}x)",
            cfg.name, s.uops, s.cycles, s.branches, s.mispredicts, s.indirects,
            s.indirect_misses, s.l1_hits, s.l2_hits,
            s.mem_accesses - s.l1_hits - s.l2_hits,
            s.commits, s.total_aborts(), s.coverage(), s.avg_region_size(),
            s.region_footprint.mean(), s.region_footprint.max, sb.static_uops,
            s.uops as f64 / sb_wall / 1e6,
            pu.stats.uops as f64 / pu_wall / 1e6,
            pu_wall / sb_wall,
        );
        let diff = s.diff(&pu.stats);
        if diff.is_empty() {
            println!("      engines: bit-identical stats");
        } else {
            println!("      ENGINES DIVERGE (superblock vs per-uop):");
            for line in &diff {
                println!("        {line}");
            }
        }
        let mix: Vec<String> = s
            .uop_classes
            .iter_nonzero()
            .map(|(c, n)| format!("{} {}", c.name(), n))
            .collect();
        println!("      mix: {}", mix.join(" | "));
        let mut sites: Vec<_> = s.mispredict_sites.iter().collect();
        sites.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
        for ((mth, pc), n) in sites.into_iter().take(4) {
            println!("      miss site m{mth}:{pc} = {n}");
        }
        let compiled = compile_workload(w, &p, &cfg);
        let mut methods: Vec<_> = compiled.code.iter().collect();
        methods.sort_by_key(|(m, _)| m.0);
        for (m, c) in methods {
            println!(
                "      method m{} {:24} uops {:5} regs {:4}",
                m.0,
                c.name,
                c.uops.len(),
                c.regs
            );
        }
    }
}
