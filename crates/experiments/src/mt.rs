//! The real multi-core harness (`experiments -- mt`): N pooled-machine
//! workers on real OS threads over one shared coherence [`Directory`]
//! (DESIGN §17), serving the `serve` corpus's tenants with **no
//! [`FaultPlan`](hasp_hw::FaultPlan)** — every abort in this harness is
//! organic, produced by genuine cross-thread coherence traffic.
//!
//! Two phases feed `BENCH_mt.json`:
//!
//! * **Scaling legs** (1/2/4/8 workers): each worker round-robins the
//!   tenant list from a phase-shifted start, so workers mostly execute
//!   *different* tenants (distinct address spaces — no interaction) and
//!   collide only when per-tenant runtimes drift them onto the same
//!   tenant. Wall-clock throughput per leg comes from the shared
//!   warm-then-interleaved best-of-reps scaffold
//!   ([`hasp_bench::best_of_interleaved`]).
//! * **Contention phase**: every worker hammers the *same* tenant (one
//!   shared address space). This is where emergent `Conflict`/`Sle`
//!   aborts, abort-rate knees comparable to the injected sweeps in
//!   `BENCH_knee.json`, and §14 governor-ladder climbs are measured.
//!
//! Every iteration asserts the interpreter's reference checksum, so the
//! atomicity contract is re-proven under real concurrency on every
//! request; every leg asserts the directory's conservation identity
//! (`signaled == sig_aborts + sig_raced` once mailboxes quiesce).

use std::sync::Arc;

use hasp_bench::best_of_interleaved;
use hasp_hw::stats::RunStats;
use hasp_hw::{
    CoreLink, Directory, GovernorConfig, HwConfig, LinkStats, Machine, MachinePools, ABORT_REASONS,
};
use hasp_opt::CompilerConfig;
use hasp_workloads::Workload;

use crate::report::{num, JsonArr, JsonObj, Table};
use crate::runner::{compile_workload, CompiledWorkload, ProfiledWorkload};
use crate::service::build_tenants;

/// Index of `Conflict` in [`ABORT_REASONS`] (checked at startup).
fn reason_index(name: &str) -> usize {
    ABORT_REASONS
        .iter()
        .position(|r| r.name() == name)
        .unwrap_or_else(|| panic!("abort reason {name} missing"))
}

/// One tenant as the mt harness sees it: workload + profile + sealed code.
/// The hardware config is shared (and injection-free) across tenants.
struct MtTenant {
    name: &'static str,
    workload: Workload,
    profiled: ProfiledWorkload,
    compiled: CompiledWorkload,
}

/// The injection-free hardware configuration every mt machine runs:
/// baseline timing, governor online, **no FaultPlan** — conflicts must
/// emerge from the directory or not at all.
fn mt_hw() -> HwConfig {
    HwConfig {
        name: "mt",
        governor: GovernorConfig::online(),
        ..HwConfig::baseline()
    }
}

/// Per-worker aggregate over one leg run.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerAgg {
    iterations: u64,
    uops: u64,
    commits: u64,
    aborts: [u64; ABORT_REASONS.len()],
    tier_enters: [u64; 4],
    tier_time: [u64; 4],
    lock_subscriptions: u64,
    lock_holds: u64,
    link: LinkStats,
}

impl WorkerAgg {
    fn absorb_stats(&mut self, s: &RunStats) {
        self.iterations += 1;
        self.uops += s.uops;
        self.commits += s.commits;
        for (slot, &r) in self.aborts.iter_mut().zip(ABORT_REASONS.iter()) {
            *slot += s.aborts.get(r);
        }
        for t in 0..4 {
            self.tier_enters[t] += s.tier_enters[t];
            self.tier_time[t] += s.tier_time[t];
        }
        self.lock_subscriptions += s.lock_subscriptions;
        self.lock_holds += s.lock_holds;
    }

    fn absorb_link(&mut self, l: &LinkStats) {
        self.link.published += l.published;
        self.link.drained += l.drained;
        self.link.sig_aborts += l.sig_aborts;
        self.link.sig_raced += l.sig_raced;
        self.link.benign += l.benign;
    }

    fn merge(&mut self, o: &WorkerAgg) {
        self.iterations += o.iterations;
        self.uops += o.uops;
        self.commits += o.commits;
        for (a, b) in self.aborts.iter_mut().zip(o.aborts.iter()) {
            *a += b;
        }
        for t in 0..4 {
            self.tier_enters[t] += o.tier_enters[t];
            self.tier_time[t] += o.tier_time[t];
        }
        self.lock_subscriptions += o.lock_subscriptions;
        self.lock_holds += o.lock_holds;
        self.absorb_link(&o.link);
    }
}

/// One completed leg run: the merged worker aggregate plus the directory's
/// global counters and the conservation verdict.
#[derive(Debug, Clone, Copy)]
struct LegRun {
    workers: usize,
    agg: WorkerAgg,
    signaled: u64,
    publishes: u64,
    invalidations: u64,
    downgrades: u64,
    conservation: bool,
}

impl LegRun {
    fn emergent(&self) -> u64 {
        self.agg.aborts[reason_index("conflict")] + self.agg.aborts[reason_index("sle")]
    }
}

/// One worker's request loop: pooled machines, one [`CoreLink`] per tenant
/// (each (worker, tenant) pair is its own directory core, so a mailbox
/// only ever carries messages from its tenant's address space), checksum
/// asserted on every iteration.
fn worker_loop(
    w: usize,
    workers: usize,
    tenants: &[MtTenant],
    hw: &HwConfig,
    dir: &Arc<Directory>,
    iters: usize,
) -> WorkerAgg {
    let t = tenants.len();
    let mut links: Vec<Option<CoreLink>> = (0..t)
        .map(|i| Some(CoreLink::new(Arc::clone(dir), (w * t + i) as u8, i as u16)))
        .collect();
    let mut pools = MachinePools::new();
    let mut agg = WorkerAgg::default();
    // Phase-shifted round-robin: workers start `t / workers` tenants apart
    // so concurrent same-tenant execution comes from runtime drift, not
    // from the schedule forcing lockstep collisions.
    let offset = w * t / workers;
    for k in 0..iters {
        let ti = (k + offset) % t;
        let tn = &tenants[ti];
        let mut mach = Machine::with_pools(
            &tn.workload.program,
            &tn.compiled.code,
            hw.clone(),
            std::mem::take(&mut pools),
        );
        mach.set_fuel(tn.workload.fuel.saturating_mul(4));
        mach.attach_core(links[ti].take().expect("link in rotation"));
        if let Err(e) = mach.run(&[]) {
            panic!("mt worker {w} tenant {}: {e:?}", tn.name);
        }
        assert_eq!(
            mach.env.checksum(),
            tn.profiled.reference_checksum,
            "mt worker {w} tenant {} diverged under contention",
            tn.name
        );
        agg.absorb_stats(mach.stats());
        links[ti] = mach.detach_core();
        pools = mach.into_pools();
    }
    for link in links.into_iter().flatten() {
        agg.absorb_link(&link.stats);
    }
    agg
}

/// Runs one leg: `workers` real threads over a fresh directory, each
/// executing `iters` requests. Returns the merged aggregate and checks
/// the conservation identity.
fn run_leg(tenants: &[MtTenant], hw: &HwConfig, workers: usize, iters: usize) -> LegRun {
    let dir = Directory::new(workers * tenants.len());
    let aggs: Vec<WorkerAgg> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let dir = Arc::clone(&dir);
                s.spawn(move || worker_loop(w, workers, tenants, hw, &dir, iters))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mt worker panicked"))
            .collect()
    });
    let mut agg = WorkerAgg::default();
    for a in &aggs {
        agg.merge(a);
    }
    // Every worker detached (and thereby drained) its links before
    // exiting, and speculative registrations cannot outlive a region, so
    // by now every signaled message has been classified.
    let conservation = dir.signaled() == agg.link.sig_aborts + agg.link.sig_raced;
    LegRun {
        workers,
        agg,
        signaled: dir.signaled(),
        publishes: dir.publishes(),
        invalidations: dir.invalidations(),
        downgrades: dir.downgrades(),
        conservation,
    }
}

/// One scaling-leg row of the report.
#[derive(Debug, Clone, Copy)]
pub struct MtLeg {
    /// Worker threads (= cores per tenant view).
    pub workers: usize,
    /// Total requests served (workers × iterations).
    pub requests: u64,
    /// Best-of-reps wall seconds for the whole leg.
    pub wall_s: f64,
    /// Requests per wall second (the scaling metric: per-worker work is
    /// fixed, so ideal scaling keeps wall flat as workers grow).
    pub throughput_rps: f64,
    /// Retired uops across all workers (warm run).
    pub uops: u64,
    /// Region commits.
    pub commits: u64,
    /// Aborts, total.
    pub aborts: u64,
    /// Organic `Conflict` + `Sle` aborts.
    pub emergent: u64,
    /// Emergent aborts per million retired uops (comparable to the
    /// injected-rate axis of `BENCH_knee.json`).
    pub emergent_per_muop: f64,
    /// Directory messages sent with a live speculative collision.
    pub signaled: u64,
    /// Directory publishes / invalidations / downgrades.
    pub publishes: u64,
    /// Invalidation messages.
    pub invalidations: u64,
    /// Downgrade messages.
    pub downgrades: u64,
    /// Conservation identity held (`signaled == sig_aborts + sig_raced`).
    pub conservation: bool,
    /// Victim-side classification of signaled messages.
    pub sig_aborts: u64,
    /// Signals that provably raced with a commit/abort flash-clear.
    pub sig_raced: u64,
    /// Governor-ladder tier entries (0–3) under this leg.
    pub tier_enters: [u64; 4],
    /// Region-entry consults spent per tier.
    pub tier_time: [u64; 4],
}

/// The contention-phase summary: all workers on one shared tenant.
#[derive(Debug, Clone, Copy)]
pub struct MtContention {
    /// Worker threads hammering the shared tenant.
    pub workers: usize,
    /// Requests served.
    pub requests: u64,
    /// Retired uops.
    pub uops: u64,
    /// Region commits.
    pub commits: u64,
    /// Organic `Conflict` + `Sle` aborts (the non-vacuity gate).
    pub emergent: u64,
    /// Emergent aborts per million retired uops.
    pub emergent_per_muop: f64,
    /// Governor-ladder tier entries.
    pub tier_enters: [u64; 4],
    /// Region-entry consults per tier.
    pub tier_time: [u64; 4],
    /// Tier-2 fallback-lock subscriptions taken.
    pub lock_subscriptions: u64,
    /// Software-path executions under the fallback lock.
    pub lock_holds: u64,
    /// Conservation identity held.
    pub conservation: bool,
    /// Signaled / classified message counts.
    pub signaled: u64,
    /// Signals that aborted the victim's region.
    pub sig_aborts: u64,
    /// Signals that raced a flash-clear.
    pub sig_raced: u64,
}

/// The full mt report.
#[derive(Debug)]
pub struct MtReport {
    /// Smoke (CI slice) or full run.
    pub smoke: bool,
    /// Timed reps per leg (plus one warm pass).
    pub reps: usize,
    /// Tenant names in rotation order.
    pub tenants: Vec<&'static str>,
    /// Shared-tenant name of the contention phase.
    pub contended_tenant: &'static str,
    /// Host parallelism (`available_parallelism`) — the scaling-floor gate
    /// in `scripts/check.sh` only applies when this is ≥ 2.
    pub host_cores: usize,
    /// Scaling legs in worker order.
    pub legs: Vec<MtLeg>,
    /// The contention phase.
    pub contention: MtContention,
}

impl MtReport {
    /// Every leg (and the contention phase) satisfied conservation.
    pub fn all_conserved(&self) -> bool {
        self.legs.iter().all(|l| l.conservation) && self.contention.conservation
    }

    /// Organic aborts observed without any injection plan.
    pub fn emergent_total(&self) -> u64 {
        self.contention.emergent + self.legs.iter().map(|l| l.emergent).sum::<u64>()
    }

    /// Highest governor tier any region entered anywhere in the run.
    pub fn max_tier(&self) -> usize {
        let mut max = 0;
        let mut consider = |te: &[u64; 4]| {
            for (t, &n) in te.iter().enumerate() {
                if n > 0 {
                    max = max.max(t);
                }
            }
        };
        for l in &self.legs {
            consider(&l.tier_enters);
        }
        consider(&self.contention.tier_enters);
        max
    }

    /// Throughput scaling of leg `i` relative to the 1-worker leg.
    pub fn scaling_x(&self, i: usize) -> f64 {
        self.legs[i].throughput_rps / self.legs[0].throughput_rps
    }

    /// Renders the human-readable tables.
    pub fn table(&self) -> String {
        let mut t = Table::new(
            &format!(
                "mt: real-thread scaling over the shared directory ({} tenants, host cores {})",
                self.tenants.len(),
                self.host_cores
            ),
            &[
                "workers", "reqs", "wall s", "req/s", "x", "commits", "aborts", "emergent",
                "e/Muop", "conserve",
            ],
        );
        for (i, l) in self.legs.iter().enumerate() {
            t.row(&[
                l.workers.to_string(),
                l.requests.to_string(),
                num(l.wall_s, 3),
                num(l.throughput_rps, 1),
                num(self.scaling_x(i), 2),
                l.commits.to_string(),
                l.aborts.to_string(),
                l.emergent.to_string(),
                num(l.emergent_per_muop, 2),
                if l.conservation { "ok" } else { "FAIL" }.to_string(),
            ]);
        }
        let mut c = Table::new(
            &format!(
                "mt contention: {} workers sharing tenant {}",
                self.contention.workers, self.contended_tenant
            ),
            &[
                "reqs",
                "commits",
                "emergent",
                "e/Muop",
                "tiers 0/1/2/3",
                "locksub",
                "conserve",
            ],
        );
        let te = self.contention.tier_enters;
        c.row(&[
            self.contention.requests.to_string(),
            self.contention.commits.to_string(),
            self.contention.emergent.to_string(),
            num(self.contention.emergent_per_muop, 2),
            format!("{}/{}/{}/{}", te[0], te[1], te[2], te[3]),
            self.contention.lock_subscriptions.to_string(),
            if self.contention.conservation {
                "ok"
            } else {
                "FAIL"
            }
            .to_string(),
        ]);
        format!("{}{}", t.render(), c.render())
    }

    /// Serializes the artifact.
    pub fn json(&self, wall_s: f64) -> String {
        let mut legs = JsonArr::new();
        for (i, l) in self.legs.iter().enumerate() {
            legs = legs.obj(
                JsonObj::new()
                    .int("workers", l.workers as u64)
                    .int("requests", l.requests)
                    .num("wall_s", l.wall_s)
                    .num("throughput_rps", l.throughput_rps)
                    .num("scaling_x", self.scaling_x(i))
                    .int("uops", l.uops)
                    .int("commits", l.commits)
                    .int("aborts", l.aborts)
                    .int("emergent", l.emergent)
                    .num("emergent_per_muop", l.emergent_per_muop)
                    .int("signaled", l.signaled)
                    .int("sig_aborts", l.sig_aborts)
                    .int("sig_raced", l.sig_raced)
                    .int("publishes", l.publishes)
                    .int("invalidations", l.invalidations)
                    .int("downgrades", l.downgrades)
                    .bool("conservation", l.conservation)
                    .arr("tier_enters", tier_arr(&l.tier_enters))
                    .arr("tier_time", tier_arr(&l.tier_time)),
            );
        }
        let c = &self.contention;
        let contention = JsonObj::new()
            .int("workers", c.workers as u64)
            .str("tenant", self.contended_tenant)
            .int("requests", c.requests)
            .int("uops", c.uops)
            .int("commits", c.commits)
            .int("emergent", c.emergent)
            .num("emergent_per_muop", c.emergent_per_muop)
            .int("signaled", c.signaled)
            .int("sig_aborts", c.sig_aborts)
            .int("sig_raced", c.sig_raced)
            .int("lock_subscriptions", c.lock_subscriptions)
            .int("lock_holds", c.lock_holds)
            .bool("conservation", c.conservation)
            .arr("tier_enters", tier_arr(&c.tier_enters))
            .arr("tier_time", tier_arr(&c.tier_time));
        let mut tenants = JsonArr::new();
        for name in &self.tenants {
            tenants = tenants.str(name);
        }
        JsonObj::new()
            .str("schema", "hasp-mt-v1")
            .bool("smoke", self.smoke)
            .int("reps", self.reps as u64)
            .int("host_cores", self.host_cores as u64)
            .arr("tenants", tenants)
            .arr("legs", legs)
            .obj("contention", contention)
            .bool("conservation_ok", self.all_conserved())
            .int("emergent_total", self.emergent_total())
            .int("max_tier", self.max_tier() as u64)
            .num("wall_s", wall_s)
            .finish()
    }
}

fn tier_arr(v: &[u64; 4]) -> JsonArr {
    let mut a = JsonArr::new();
    for &x in v {
        a = a.int(x);
    }
    a
}

fn leg_row(run: &LegRun, wall_s: f64) -> MtLeg {
    let a = &run.agg;
    MtLeg {
        workers: run.workers,
        requests: a.iterations,
        wall_s,
        throughput_rps: a.iterations as f64 / wall_s.max(1e-9),
        uops: a.uops,
        commits: a.commits,
        aborts: a.aborts.iter().sum(),
        emergent: run.emergent(),
        emergent_per_muop: run.emergent() as f64 / (a.uops as f64 / 1e6).max(1e-9),
        signaled: run.signaled,
        publishes: run.publishes,
        invalidations: run.invalidations,
        downgrades: run.downgrades,
        conservation: run.conservation,
        sig_aborts: a.link.sig_aborts,
        sig_raced: a.link.sig_raced,
        tier_enters: a.tier_enters,
        tier_time: a.tier_time,
    }
}

/// Profiles and compiles the tenant corpus (no injection in any tenant's
/// hardware — the `serve` corpus only contributes the workload mix).
fn build_mt_tenants(smoke: bool) -> Vec<MtTenant> {
    let ccfg = CompilerConfig::atomic_aggressive();
    build_tenants(smoke)
        .into_iter()
        .map(|t| {
            let compiled = compile_workload(&t.workload, &t.profiled, &ccfg);
            MtTenant {
                name: t.name,
                workload: t.workload,
                profiled: t.profiled,
                compiled,
            }
        })
        .collect()
}

/// Runs the full mt benchmark.
pub fn run_mt(smoke: bool) -> MtReport {
    let tenants = build_mt_tenants(smoke);
    let hw = mt_hw();
    debug_assert!(!hw.faults.any_per_uop(), "mt must be injection-free");
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let worker_legs: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let (reps, iters) = if smoke { (2, 6) } else { (3, 8) };

    // Scaling phase through the shared scaffold: warm pass per leg, then
    // reps interleaved round-robin so host drift degrades all legs alike.
    // Abort counts legitimately vary across reps (real interleavings);
    // request counts and checksums (asserted in the workers) must not.
    let out = best_of_interleaved(
        reps,
        worker_legs.len(),
        |k| run_leg(&tenants, &hw, worker_legs[k], iters),
        |k, rep, warm| {
            assert_eq!(
                rep.agg.iterations, warm.agg.iterations,
                "leg {k} request count varied"
            );
            assert!(rep.conservation, "leg {k} conservation failed in a rep");
        },
    );
    let legs: Vec<MtLeg> = out
        .warm
        .iter()
        .zip(out.best_s.iter())
        .map(|(run, &s)| leg_row(run, s))
        .collect();

    // Contention phase: everyone on one shared tenant (one address space).
    let contended_tenant = if smoke { "pmd" } else { "hsqldb" };
    let shared: Vec<MtTenant> = {
        let mut v = build_mt_tenants(smoke);
        v.retain(|t| t.name == contended_tenant);
        v
    };
    assert_eq!(shared.len(), 1, "contended tenant missing from corpus");
    let cworkers = *worker_legs.last().expect("legs");
    let citers = if smoke { 8 } else { 12 };
    let crun = run_leg(&shared, &hw, cworkers, citers);
    let ca = &crun.agg;
    let contention = MtContention {
        workers: cworkers,
        requests: ca.iterations,
        uops: ca.uops,
        commits: ca.commits,
        emergent: crun.emergent(),
        emergent_per_muop: crun.emergent() as f64 / (ca.uops as f64 / 1e6).max(1e-9),
        tier_enters: ca.tier_enters,
        tier_time: ca.tier_time,
        lock_subscriptions: ca.lock_subscriptions,
        lock_holds: ca.lock_holds,
        conservation: crun.conservation,
        signaled: crun.signaled,
        sig_aborts: ca.link.sig_aborts,
        sig_raced: ca.link.sig_raced,
    };

    MtReport {
        smoke,
        reps,
        tenants: tenants.iter().map(|t| t.name).collect(),
        contended_tenant,
        host_cores,
        legs,
        contention,
    }
}
