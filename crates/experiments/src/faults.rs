//! The fault-injection campaign: workload × fault kind × rate, with every
//! cell executed in validation mode (post-abort/post-commit invariant
//! checks on) and the online abort-recovery governor enabled.
//!
//! The campaign operationalizes the paper's reliability claim (§3, §6.1):
//! under *any* abort cause — coherence conflict, interrupt, cache-line
//! overflow, spurious hardware abort, or a targeted abort at a precise
//! region entry — the machine must roll back to bit-exact architectural
//! state and still produce the interpreter's checksum. A cell that
//! diverges, faults, or trips the invariant validator is recorded as a
//! failure value ([`CellError`]) rather than a panic, so the resilience
//! report always covers the full matrix.

use hasp_hw::{FaultKind, FaultPlan, GovernorConfig, HwConfig, FAULT_KINDS};
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, synthetic, Workload};

use crate::reform::{run_reform_quanta, ReformOutcome};
use crate::report::{num, JsonArr, JsonObj, Table};
use crate::runner::{
    compile_workload, profile_workload, try_execute_compiled, CellError, CompiledWorkload,
    ProfiledWorkload, WorkloadRun,
};
use crate::suite::parallel_map;

/// The overflow line budget the campaign's re-formation rows run under:
/// the middle sweep rate, harsh enough that a genuinely fat region keeps
/// overflowing, mild enough that ordinary regions stay speculative.
pub const REFORM_OVERFLOW_BUDGET: u64 = 8;

/// The swept rates for each fault kind, mild → harsh. The rate's meaning is
/// kind-specific: per-1M-in-region-uop probability (conflict, spurious),
/// retired-uop interval (interrupt), speculative line budget (overflow), or
/// dynamic entry ordinal (targeted).
pub fn sweep_rates(kind: FaultKind) -> [u64; 3] {
    match kind {
        FaultKind::Conflict => [100, 1_000, 10_000],
        FaultKind::Interrupt => [100_000, 10_000, 1_000],
        FaultKind::Overflow => [32, 8, 2],
        FaultKind::Spurious => [100, 1_000, 10_000],
        FaultKind::Targeted => [1, 100, 10_000],
    }
}

/// The hardware configuration every campaign cell runs under: baseline
/// timing, the cell's injection plan, invariant validation on, governor
/// online.
pub fn campaign_hw(plan: FaultPlan) -> HwConfig {
    let mut hw = HwConfig::baseline();
    hw.faults = plan;
    hw.validate = true;
    hw.governor = GovernorConfig::online();
    hw
}

/// The measurements extracted from one passing cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Total cycles under injection.
    pub cycles: u64,
    /// Cycles relative to the same workload's clean (no-injection) run.
    pub slowdown: f64,
    /// Regions committed.
    pub commits: u64,
    /// Regions aborted (all reasons).
    pub aborts: u64,
    /// Aborts recorded under the injected kind's reason register value.
    pub injected: u64,
    /// Invariant validations that ran (and passed).
    pub validations: u64,
    /// Region entries the governor de-speculated.
    pub governor_skips: u64,
    /// Times the governor patched a region out (streak hit the budget).
    pub governor_disables: u64,
    /// Cooldown expiries that re-enabled a de-speculated region.
    pub governor_reenables: u64,
    /// Calm-streak one-tier de-escalations.
    pub governor_recoveries: u64,
    /// Governor-ladder transitions into each tier (0–3).
    pub tier_enters: [u64; 4],
    /// Region-entry consults spent at each tier (time-in-tier).
    pub tier_time: [u64; 4],
    /// Tier-2 fallback-lock read-set subscriptions.
    pub lock_subscriptions: u64,
    /// Software-path executions taken under the fallback lock.
    pub lock_holds: u64,
    /// Re-formation requests the governor emitted.
    pub reform_requests: u64,
    /// `tier_enters == tier_exits + tier_live` held per tier at run end
    /// (the ladder's accounting invariant; the CI smoke leg gates on it).
    pub tier_consistent: bool,
    /// Mean de-speculated entries per re-enable — a proxy for how long a
    /// region sat on the software path before speculation resumed
    /// (`governor_skips / governor_reenables`; equals plain skips when
    /// nothing ever re-enabled).
    pub recovery_latency: f64,
}

/// One (workload × fault kind × rate) campaign cell.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Workload name.
    pub workload: &'static str,
    /// Injected fault family.
    pub kind: FaultKind,
    /// Kind-specific rate (see [`sweep_rates`]).
    pub rate: u64,
    /// The cell's outcome, or why it failed.
    pub result: Result<CellOutcome, CellError>,
}

/// The full campaign result: every cell plus the clean reference runs.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-workload clean-run cycles (the slowdown denominator).
    pub clean_cycles: Vec<(&'static str, u64)>,
    /// Every campaign cell, in (workload, kind, rate) order.
    pub cells: Vec<FaultCell>,
    /// Adaptive re-formation rows: each campaign workload plus the
    /// `footprint-split` ladder adversary driven through the
    /// compile → run → drain → re-form loop under overflow injection at
    /// [`REFORM_OVERFLOW_BUDGET`] lines.
    pub reforms: Vec<ReformOutcome>,
}

impl CampaignReport {
    /// True when every cell reproduced the interpreter checksum under
    /// injection (no faults, divergences, or invariant violations) and
    /// every re-formation quantum did too.
    pub fn all_passed(&self) -> bool {
        self.cells.iter().all(|c| c.result.is_ok())
            && self.reforms.iter().all(|r| r.error.is_none())
    }

    /// True when every passing cell's governor-ladder tier counters
    /// balanced (`enters == exits + live` per tier).
    pub fn tiers_consistent(&self) -> bool {
        self.cells
            .iter()
            .filter_map(|c| c.result.as_ref().ok())
            .all(|o| o.tier_consistent)
    }

    /// True when at least one re-formation row both re-formed a region and
    /// kept committing afterwards — the ladder's recovery signal.
    pub fn any_recovered(&self) -> bool {
        self.reforms.iter().any(|r| r.recovered)
    }

    /// The failed cells, if any.
    pub fn failures(&self) -> Vec<&FaultCell> {
        self.cells.iter().filter(|c| c.result.is_err()).collect()
    }

    /// Renders the resilience table.
    pub fn table(&self) -> String {
        let mut t = Table::new(
            "Fault-injection campaign (checksum-equivalent under every abort cause)",
            &[
                "workload",
                "fault",
                "rate",
                "slowdown",
                "commits",
                "aborts",
                "injected",
                "validated",
                "gov-skips",
                "tiers",
                "reforms",
                "status",
            ],
        );
        for c in &self.cells {
            match &c.result {
                Ok(o) => t.row(&[
                    c.workload.into(),
                    c.kind.name().into(),
                    c.rate.to_string(),
                    format!("{}x", num(o.slowdown, 2)),
                    o.commits.to_string(),
                    o.aborts.to_string(),
                    o.injected.to_string(),
                    o.validations.to_string(),
                    o.governor_skips.to_string(),
                    // Tier-entry distribution, tracked→3 left to right.
                    format!(
                        "{}/{}/{}/{}",
                        o.tier_enters[0], o.tier_enters[1], o.tier_enters[2], o.tier_enters[3]
                    ),
                    o.reform_requests.to_string(),
                    if o.tier_consistent {
                        "ok".into()
                    } else {
                        "TIER-IMBALANCE".to_string()
                    },
                ]),
                Err(e) => t.row(&[
                    c.workload.into(),
                    c.kind.name().into(),
                    c.rate.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("FAIL: {e}"),
                ]),
            }
        }
        let mut s = t.render();
        let mut rt = Table::new(
            "Adaptive re-formation (overflow budget 8, governor ladder online)",
            &[
                "workload",
                "quanta",
                "reforms",
                "post-commits",
                "recovered",
                "converged",
                "status",
            ],
        );
        for r in &self.reforms {
            rt.row(&[
                r.workload.into(),
                r.quanta.len().to_string(),
                r.excluded.len().to_string(),
                r.post_reform_commits.to_string(),
                if r.recovered { "yes" } else { "no" }.into(),
                if r.converged { "yes" } else { "no" }.into(),
                match &r.error {
                    None => "ok".into(),
                    Some(e) => format!("FAIL: {e}"),
                },
            ]);
        }
        s.push('\n');
        s.push_str(&rt.render());
        s
    }

    /// Serializes the report as the `BENCH_faults.json` artifact.
    pub fn json(&self, smoke: bool, threads: usize, wall_s: f64) -> String {
        let mut cells = JsonArr::new();
        for c in &self.cells {
            let mut o = JsonObj::new()
                .str("workload", c.workload)
                .str("fault", c.kind.name())
                .int("rate", c.rate)
                .bool("ok", c.result.is_ok());
            match &c.result {
                Ok(out) => {
                    let tiers = |v: &[u64; 4]| {
                        JsonObj::new()
                            .int("t0", v[0])
                            .int("t1", v[1])
                            .int("t2", v[2])
                            .int("t3", v[3])
                    };
                    o = o
                        .int("cycles", out.cycles)
                        .num("slowdown", out.slowdown)
                        .int("commits", out.commits)
                        .int("aborts", out.aborts)
                        .int("injected", out.injected)
                        .int("validations", out.validations)
                        .int("governor_skips", out.governor_skips)
                        .int("governor_disables", out.governor_disables)
                        .int("governor_reenables", out.governor_reenables)
                        .int("governor_recoveries", out.governor_recoveries)
                        .obj("tier_enters", tiers(&out.tier_enters))
                        .obj("tier_time", tiers(&out.tier_time))
                        .int("lock_subscriptions", out.lock_subscriptions)
                        .int("lock_holds", out.lock_holds)
                        .int("reform_requests", out.reform_requests)
                        .bool("tier_consistent", out.tier_consistent)
                        .num("recovery_latency", out.recovery_latency);
                }
                Err(e) => {
                    o = o.str("error", &e.to_string());
                }
            }
            cells = cells.obj(o);
        }
        let mut reforms = JsonArr::new();
        for r in &self.reforms {
            let mut o = JsonObj::new()
                .str("workload", r.workload)
                .bool("ok", r.error.is_none())
                .int("quanta", r.quanta.len() as u64)
                .int("reforms", r.excluded.len() as u64)
                .int(
                    "reform_requests",
                    r.quanta.iter().map(|q| q.requests.len() as u64).sum(),
                )
                .int("post_reform_commits", r.post_reform_commits)
                .bool("recovered", r.recovered)
                .bool("converged", r.converged);
            if let Some(e) = &r.error {
                o = o.str("error", &e.to_string());
            }
            reforms = reforms.obj(o);
        }
        let policy = GovernorConfig::online();
        let meta = JsonObj::new()
            .int("rng_seed", FaultPlan::none().seed)
            .str("governor", "online")
            .int("retry_budget", u64::from(policy.retry_budget))
            .int("cooldown_entries", policy.cooldown_entries)
            .int("max_cooldown", policy.max_cooldown)
            .int("tier2_disables", u64::from(policy.tier2_disables))
            .int("tier3_disables", u64::from(policy.tier3_disables))
            .int("reform_budget", u64::from(policy.reform_budget))
            .int("reform_overflow_budget", REFORM_OVERFLOW_BUDGET);
        JsonObj::new()
            .str("schema", "hasp-faults-v2")
            // This campaign is the *injected* ablation: conflicts come from
            // the deterministic FaultPlan, not from other cores. The organic
            // counterpart (real threads over the coherence directory) is the
            // `mt` harness's BENCH_mt.json.
            .str("mode", "injected")
            .bool("smoke", smoke)
            .int("threads", threads as u64)
            .num("wall_s", wall_s)
            .obj("meta", meta)
            .int("cells", self.cells.len() as u64)
            .int("failed", self.failures().len() as u64)
            .bool("all_passed", self.all_passed())
            .bool("tier_counters_consistent", self.tiers_consistent())
            .bool("any_recovered", self.any_recovered())
            .arr("matrix", cells)
            .arr("reforms", reforms)
            .finish()
    }
}

/// Runs the campaign over the Table 2 workload suite. Smoke mode restricts
/// to two representative workloads (fop, pmd) at each kind's middle rate —
/// the CI-sized slice `scripts/check.sh` runs.
pub fn run_campaign(smoke: bool, threads: usize) -> CampaignReport {
    let mut workloads = all_workloads();
    if smoke {
        workloads.retain(|w| w.name == "fop" || w.name == "pmd");
    }
    run_campaign_on(&workloads, smoke, threads)
}

/// Runs the campaign over an explicit workload set (test entry point).
/// `smoke` selects middle-rate-only sweeps.
pub fn run_campaign_on(workloads: &[Workload], smoke: bool, threads: usize) -> CampaignReport {
    let ccfg = CompilerConfig::atomic_aggressive();
    let idx: Vec<usize> = (0..workloads.len()).collect();
    let profiles = parallel_map(workloads, threads, profile_workload);
    let compiled = parallel_map(&idx, threads, |&i| {
        compile_workload(&workloads[i], &profiles[i], &ccfg)
    });

    // Clean reference runs: same code, same validation-mode hardware, no
    // injection. A failure here is a harness bug, not a campaign finding.
    let clean: Vec<WorkloadRun> = parallel_map(&idx, threads, |&i| {
        try_execute_compiled(
            &workloads[i],
            &profiles[i],
            &compiled[i],
            &campaign_hw(FaultPlan::none()),
        )
        .unwrap_or_else(|e| panic!("clean campaign run of {} failed: {e}", workloads[i].name))
    });

    let mut specs: Vec<(usize, FaultKind, u64)> = Vec::new();
    for &i in &idx {
        for kind in FAULT_KINDS {
            let rates = sweep_rates(kind);
            let rates: &[u64] = if smoke { &rates[1..2] } else { &rates };
            for &rate in rates {
                specs.push((i, kind, rate));
            }
        }
    }

    let results = parallel_map(&specs, threads, |&(i, kind, rate)| {
        try_execute_compiled(
            &workloads[i],
            &profiles[i],
            &compiled[i],
            &campaign_hw(kind.plan(rate)),
        )
    });

    let cells = specs
        .iter()
        .zip(results)
        .map(|(&(i, kind, rate), result)| FaultCell {
            workload: workloads[i].name,
            kind,
            rate,
            result: result.map(|run| CellOutcome {
                cycles: run.stats.cycles,
                slowdown: run.stats.cycles as f64 / clean[i].stats.cycles.max(1) as f64,
                commits: run.stats.commits,
                aborts: run.stats.total_aborts(),
                injected: run.stats.aborts.get(kind.reason()),
                validations: run.stats.validations,
                governor_skips: run.stats.governor_skips,
                governor_disables: run.stats.governor_disables,
                governor_reenables: run.stats.governor_reenables,
                governor_recoveries: run.stats.governor_recoveries,
                tier_enters: run.stats.tier_enters,
                tier_time: run.stats.tier_time,
                lock_subscriptions: run.stats.lock_subscriptions,
                lock_holds: run.stats.lock_holds,
                reform_requests: run.stats.reform_requests,
                tier_consistent: run.stats.tier_counters_consistent(),
                recovery_latency: run.stats.governor_skips as f64
                    / run.stats.governor_reenables.max(1) as f64,
            }),
        })
        .collect();

    // Re-formation rows: every campaign workload plus the footprint-split
    // ladder adversary (which guarantees the recover signal is exercised),
    // each driven through the quantized re-formation loop under overflow
    // injection.
    let adversary = synthetic::footprint_split(2_000);
    let adversary_profile = profile_workload(&adversary);
    let reform_hw = campaign_hw(FaultKind::Overflow.plan(REFORM_OVERFLOW_BUDGET));
    let reform_idx: Vec<usize> = (0..=workloads.len()).collect();
    let reforms = parallel_map(&reform_idx, threads, |&i| {
        let (w, p) = if i < workloads.len() {
            (&workloads[i], &profiles[i])
        } else {
            (&adversary, &adversary_profile)
        };
        run_reform_quanta(w, p, &ccfg, &reform_hw)
    });

    CampaignReport {
        clean_cycles: idx
            .iter()
            .map(|&i| (workloads[i].name, clean[i].stats.cycles))
            .collect(),
        cells,
        reforms,
    }
}

/// Slowdown threshold of the knee search: a probe is *tolerated* when its
/// validated, governor-online run stays under this ratio of the clean run.
pub const KNEE_THRESHOLD: f64 = 1.05;

/// Bracket cap of the knee search, in conflicts per million in-region uops
/// (the cap means every in-region uop conflicts).
pub const KNEE_RATE_CAP: u64 = 1_000_000;

/// One probe of the knee search: a conflict-injection run at `rate`.
#[derive(Debug, Clone)]
pub struct KneeProbe {
    /// Injected conflicts per million in-region uops.
    pub rate: u64,
    /// Cycles relative to the clean run.
    pub slowdown: f64,
    /// `slowdown < KNEE_THRESHOLD`.
    pub tolerated: bool,
    /// Regions aborted (all reasons) during the probe.
    pub aborts: u64,
}

/// The knee-search result for one workload: the highest injected conflict
/// rate it tolerates under the online governor at under-5% slowdown.
#[derive(Debug, Clone)]
pub struct KneeRow {
    /// Workload name.
    pub workload: &'static str,
    /// Clean-run cycles (the slowdown denominator).
    pub clean_cycles: u64,
    /// Highest tolerated rate found (0 = even the mildest probe exceeded
    /// the threshold).
    pub knee_rate: u64,
    /// Slowdown measured at the knee (1.0 when `knee_rate` is 0).
    pub knee_slowdown: f64,
    /// The workload tolerated [`KNEE_RATE_CAP`] itself — the governor holds
    /// the slowdown under the threshold at any injection rate.
    pub saturated: bool,
    /// Every probe taken, in search order.
    pub probes: Vec<KneeProbe>,
    /// A probe run failed checksum equivalence, faulted, or tripped the
    /// invariant validator (the row's knee is then meaningless).
    pub error: Option<CellError>,
}

/// The knee report over a workload set.
#[derive(Debug, Clone)]
pub struct KneeReport {
    /// One row per workload.
    pub rows: Vec<KneeRow>,
}

impl KneeReport {
    /// True when every probe of every row reproduced the interpreter
    /// checksum under injection.
    pub fn all_passed(&self) -> bool {
        self.rows.iter().all(|r| r.error.is_none())
    }

    /// Renders the knee table.
    pub fn table(&self) -> String {
        let mut t = Table::new(
            "Conflict-rate knee (highest rate/M tolerated at <5% slowdown, governor online)",
            &[
                "workload",
                "knee",
                "slowdown",
                "probes",
                "aborts",
                "saturated",
                "status",
            ],
        );
        for r in &self.rows {
            match &r.error {
                None => t.row(&[
                    r.workload.into(),
                    // A saturated cell's knee is a lower bound — the search
                    // never found a rate the governor could not absorb, so
                    // rendering the cap as if it were a measured knee would
                    // overstate precision.
                    if r.saturated {
                        format!(">={}", r.knee_rate)
                    } else {
                        r.knee_rate.to_string()
                    },
                    format!("{}x", num(r.knee_slowdown, 3)),
                    r.probes.len().to_string(),
                    r.probes.iter().map(|p| p.aborts).sum::<u64>().to_string(),
                    if r.saturated { "yes" } else { "no" }.into(),
                    "ok".into(),
                ]),
                Some(e) => t.row(&[
                    r.workload.into(),
                    "-".into(),
                    "-".into(),
                    r.probes.len().to_string(),
                    "-".into(),
                    "-".into(),
                    format!("FAIL: {e}"),
                ]),
            }
        }
        t.render()
    }

    /// Serializes the report as the `BENCH_knee.json` artifact.
    pub fn json(&self, smoke: bool, threads: usize, wall_s: f64) -> String {
        let mut rows = JsonArr::new();
        for r in &self.rows {
            let mut probes = JsonArr::new();
            for p in &r.probes {
                probes = probes.obj(
                    JsonObj::new()
                        .int("rate", p.rate)
                        .num("slowdown", p.slowdown)
                        .bool("tolerated", p.tolerated)
                        .int("aborts", p.aborts),
                );
            }
            let mut o = JsonObj::new()
                .str("workload", r.workload)
                .bool("ok", r.error.is_none())
                .int("clean_cycles", r.clean_cycles)
                .int("knee_rate", r.knee_rate)
                .num("knee_slowdown", r.knee_slowdown)
                .bool("saturated", r.saturated)
                .arr("probes", probes);
            if let Some(e) = &r.error {
                o = o.str("error", &e.to_string());
            }
            rows = rows.obj(o);
        }
        JsonObj::new()
            .str("schema", "hasp-knee-v1")
            .bool("smoke", smoke)
            .int("threads", threads as u64)
            .num("wall_s", wall_s)
            .num("threshold", KNEE_THRESHOLD)
            .int("rate_cap", KNEE_RATE_CAP)
            .int("rows", self.rows.len() as u64)
            .bool("all_passed", self.all_passed())
            .arr("workloads", rows)
            .finish()
    }
}

/// One conflict-injection probe under the campaign configuration
/// (validation on, governor online — checksum equivalence is asserted
/// inside [`try_execute_compiled`]).
fn knee_probe(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    clean_cycles: u64,
    rate: u64,
) -> Result<KneeProbe, CellError> {
    let run = try_execute_compiled(
        w,
        profiled,
        compiled,
        &campaign_hw(FaultPlan::conflicts(rate)),
    )?;
    let slowdown = run.stats.cycles as f64 / clean_cycles.max(1) as f64;
    Ok(KneeProbe {
        rate,
        slowdown,
        tolerated: slowdown < KNEE_THRESHOLD,
        aborts: run.stats.total_aborts(),
    })
}

/// Brackets then bisects the highest tolerated conflict rate for one
/// workload: grow ×8 from 256/M until a probe exceeds the threshold (or
/// [`KNEE_RATE_CAP`] is itself tolerated — `saturated`), then bisect the
/// bracket down to ~12% relative precision (`hi - lo <= lo/8`). The
/// governor makes the slowdown curve effectively monotone in the rate; if a
/// plateau ever wobbles, the search still terminates on a genuinely
/// tolerated rate with a tight bracket.
fn knee_search(
    w: &Workload,
    profiled: &ProfiledWorkload,
    compiled: &CompiledWorkload,
    clean_cycles: u64,
) -> KneeRow {
    let mut row = KneeRow {
        workload: w.name,
        clean_cycles,
        knee_rate: 0,
        knee_slowdown: 1.0,
        saturated: false,
        probes: Vec::new(),
        error: None,
    };
    let (mut lo, mut lo_slow) = (0u64, 1.0f64);
    let mut hi = None;
    let mut rate = 256u64;
    loop {
        match knee_probe(w, profiled, compiled, clean_cycles, rate) {
            Err(e) => {
                row.error = Some(e);
                return row;
            }
            Ok(p) => {
                let (tolerated, slowdown) = (p.tolerated, p.slowdown);
                row.probes.push(p);
                if !tolerated {
                    hi = Some(rate);
                    break;
                }
                (lo, lo_slow) = (rate, slowdown);
                if rate >= KNEE_RATE_CAP {
                    row.saturated = true;
                    break;
                }
                rate = (rate * 8).min(KNEE_RATE_CAP);
            }
        }
    }
    if let Some(mut hi) = hi {
        while hi - lo > (lo / 8).max(1) {
            let mid = lo + (hi - lo) / 2;
            match knee_probe(w, profiled, compiled, clean_cycles, mid) {
                Err(e) => {
                    row.error = Some(e);
                    return row;
                }
                Ok(p) => {
                    let (tolerated, slowdown) = (p.tolerated, p.slowdown);
                    row.probes.push(p);
                    if tolerated {
                        (lo, lo_slow) = (mid, slowdown);
                    } else {
                        hi = mid;
                    }
                }
            }
        }
    }
    row.knee_rate = lo;
    row.knee_slowdown = lo_slow;
    row
}

/// Runs the knee search over the Table 2 suite (smoke: fop + pmd only),
/// workloads in parallel, probes within a workload sequential (each one
/// steers the next).
pub fn run_knee(smoke: bool, threads: usize) -> KneeReport {
    let mut workloads = all_workloads();
    if smoke {
        workloads.retain(|w| w.name == "fop" || w.name == "pmd");
    }
    run_knee_on(&workloads, threads)
}

/// Runs the knee search over an explicit workload set (test entry point).
pub fn run_knee_on(workloads: &[Workload], threads: usize) -> KneeReport {
    let ccfg = CompilerConfig::atomic_aggressive();
    let idx: Vec<usize> = (0..workloads.len()).collect();
    let profiles = parallel_map(workloads, threads, profile_workload);
    let compiled = parallel_map(&idx, threads, |&i| {
        compile_workload(&workloads[i], &profiles[i], &ccfg)
    });
    let clean: Vec<WorkloadRun> = parallel_map(&idx, threads, |&i| {
        try_execute_compiled(
            &workloads[i],
            &profiles[i],
            &compiled[i],
            &campaign_hw(FaultPlan::none()),
        )
        .unwrap_or_else(|e| panic!("clean knee run of {} failed: {e}", workloads[i].name))
    });
    let rows = parallel_map(&idx, threads, |&i| {
        knee_search(
            &workloads[i],
            &profiles[i],
            &compiled[i],
            clean[i].stats.cycles,
        )
    });
    KneeReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hasp_workloads::synthetic;

    #[test]
    fn smoke_campaign_on_synthetic_workload_passes_every_cell() {
        let w = synthetic::add_element(2_000);
        let report = run_campaign_on(&[w], true, 2);
        assert_eq!(report.cells.len(), FAULT_KINDS.len());
        assert!(report.all_passed(), "failed cells: {:?}", report.failures());
        for c in &report.cells {
            let o = c.result.as_ref().unwrap();
            assert!(
                o.validations >= o.commits + o.aborts,
                "{}: every commit and abort must be validated",
                c.kind.name()
            );
        }
        // At least one kind actually injected aborts at the smoke rates.
        let injected: u64 = report
            .cells
            .iter()
            .map(|c| c.result.as_ref().unwrap().injected)
            .sum();
        assert!(injected > 0, "smoke rates must inject something");
        // Ladder accounting balanced in every cell.
        assert!(report.tiers_consistent());
        // The re-formation rows include the adversary, which must both
        // re-form and keep committing.
        assert!(report
            .reforms
            .iter()
            .any(|r| r.workload == "footprint-split"));
        assert!(report.any_recovered(), "adversary must reform and recover");
        // The report renders and serializes.
        assert!(report.table().contains("ok"));
        let json = report.json(true, 2, 0.5);
        assert!(json.contains("\"all_passed\": true"));
        assert!(json.contains("\"schema\": \"hasp-faults-v2\""));
        assert!(json.contains("\"rng_seed\""));
        assert!(json.contains("\"tier_counters_consistent\": true"));
        assert!(json.contains("\"any_recovered\": true"));
    }

    #[test]
    fn knee_search_converges_with_checksum_equivalence() {
        let w = synthetic::add_element(2_000);
        let report = run_knee_on(&[w], 2);
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert!(r.error.is_none(), "probe failed: {:?}", r.error);
        assert!(!r.probes.is_empty());
        assert!(
            r.knee_slowdown < KNEE_THRESHOLD,
            "the knee itself must be tolerated"
        );
        if r.saturated {
            assert_eq!(r.knee_rate, KNEE_RATE_CAP);
        } else {
            // The search was bounded by a probe over the threshold.
            assert!(r.probes.iter().any(|p| !p.tolerated));
            assert!(r.knee_rate < KNEE_RATE_CAP);
        }
        // Every tolerated probe is genuinely under the threshold and the
        // report round-trips.
        for p in &r.probes {
            assert_eq!(p.tolerated, p.slowdown < KNEE_THRESHOLD);
        }
        assert!(report.all_passed());
        let json = report.json(true, 2, 0.1);
        assert!(json.contains("\"schema\": \"hasp-knee-v1\""));
        assert!(report.table().contains("ok"));
    }

    #[test]
    fn saturated_knee_cells_render_as_a_lower_bound() {
        // A saturated row reports the cap only as ">=cap" — the search never
        // bounded the knee, so the table must not present a measured value —
        // while an unsaturated row keeps the plain number.
        let row = |workload, knee_rate, saturated| KneeRow {
            workload,
            clean_cycles: 1_000,
            knee_rate,
            knee_slowdown: 1.01,
            saturated,
            probes: Vec::new(),
            error: None,
        };
        let report = KneeReport {
            rows: vec![
                row("capped", KNEE_RATE_CAP, true),
                row("bounded", 4_096, false),
            ],
        };
        let table = report.table();
        assert!(table.contains(&format!(">={KNEE_RATE_CAP}")));
        assert!(table.contains("yes"));
        assert!(table.contains(" 4096 ") || table.contains("4096"));
        assert!(
            !table.contains(">=4096"),
            "unsaturated knees are measured values, not bounds"
        );
        let json = report.json(true, 1, 0.1);
        assert!(json.contains("\"saturated\": true"));
        assert!(json.contains("\"saturated\": false"));
    }

    #[test]
    fn full_sweep_covers_kinds_times_rates() {
        // Shape-only: spec construction, no execution.
        let n_kinds = FAULT_KINDS.len();
        for kind in FAULT_KINDS {
            assert_eq!(sweep_rates(kind).len(), 3);
        }
        assert_eq!(n_kinds, 5);
    }
}
