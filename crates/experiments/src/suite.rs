//! The experiment suite: memoized (workload × compiler × hardware) runs
//! shared by all figure/table generators, with a scoped-thread parallel
//! pipeline over the full evaluation matrix.
//!
//! The matrix factors as compile × execute: compilation depends only on
//! (workload, compiler), so each compile + lower product is built once and
//! shared — by reference — across every hardware configuration and worker
//! thread that executes it. Work is distributed by an atomic cursor over the
//! cell list; results are keyed by cell, so the cache contents are identical
//! whatever the thread interleaving (see `tests/determinism.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

use crate::runner::{
    compile_workload, execute_compiled, profile_workload, try_execute_compiled, CellError,
    CompiledWorkload, ProfiledWorkload, WorkloadRun,
};

/// One cell of the evaluation matrix: workload index × compiler × hardware.
pub type MatrixCell = (usize, CompilerConfig, HwConfig);

/// Runs `f` over `items` on up to `threads` scoped worker threads pulling
/// from a shared atomic cursor, returning results in item order (so the
/// output is independent of scheduling).
pub(crate) fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= items.len() {
                            break;
                        }
                        local.push((k, f(&items[k])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (k, r) in h.join().expect("suite worker panicked") {
                out[k] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every cell filled"))
        .collect()
}

/// Lazily-populated result cache over the benchmark suite.
pub struct Suite {
    workloads: Vec<Workload>,
    profiles: Vec<ProfiledWorkload>,
    /// Compile + lower products keyed by (workload, compiler) — each is
    /// reused by every hardware configuration that executes it.
    compiled: HashMap<(usize, &'static str), CompiledWorkload>,
    runs: HashMap<(usize, &'static str, &'static str), WorkloadRun>,
    /// Cells that failed during [`Suite::run_all`], recorded instead of
    /// killing the worker thread that hit them.
    failures: Vec<((usize, &'static str, &'static str), CellError)>,
    threads: usize,
}

impl Suite {
    /// Profiles every workload (the expensive interpreter pass) once, using
    /// every available core.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Suite::with_threads(threads)
    }

    /// As [`Suite::new`], but with an explicit worker-thread count for
    /// `run_all` (1 = fully serial).
    pub fn with_threads(threads: usize) -> Self {
        let workloads = all_workloads();
        let profiles = parallel_map(&workloads, threads, profile_workload);
        Suite {
            workloads,
            profiles,
            compiled: HashMap::new(),
            runs: HashMap::new(),
            failures: Vec::new(),
            threads: threads.max(1),
        }
    }

    /// The workloads, in Table 2 order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Profiling results for workload `i`.
    pub fn profile(&self, i: usize) -> &ProfiledWorkload {
        &self.profiles[i]
    }

    /// The worker-thread count used by [`Suite::run_all`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of distinct compile + lower products built so far.
    pub fn compiled_products(&self) -> usize {
        self.compiled.len()
    }

    /// Cells that failed during [`Suite::run_all`], in matrix order.
    pub fn failures(&self) -> &[((usize, &'static str, &'static str), CellError)] {
        &self.failures
    }

    /// The cached run for a cell, if it has been executed.
    pub fn cached(&self, i: usize, compiler: &str, hardware: &str) -> Option<&WorkloadRun> {
        self.runs
            .iter()
            .find(|((wi, c, h), _)| *wi == i && *c == compiler && *h == hardware)
            .map(|(_, run)| run)
    }

    /// Returns (running and caching if needed) the run for workload index
    /// `i` under the given configurations.
    pub fn run(&mut self, i: usize, ccfg: &CompilerConfig, hw: &HwConfig) -> &WorkloadRun {
        // Destructured so each map is borrowed independently; `entry` gives
        // one lookup per map on both hit and miss paths.
        let Suite {
            workloads,
            profiles,
            compiled,
            runs,
            ..
        } = self;
        runs.entry((i, ccfg.name, hw.name)).or_insert_with(|| {
            let product = compiled
                .entry((i, ccfg.name))
                .or_insert_with(|| compile_workload(&workloads[i], &profiles[i], ccfg));
            execute_compiled(&workloads[i], &profiles[i], product, hw)
        })
    }

    /// Convenience: run by workload name.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn run_named(&mut self, name: &str, ccfg: &CompilerConfig, hw: &HwConfig) -> &WorkloadRun {
        let i = self.index_of(name);
        self.run(i, ccfg, hw)
    }

    /// The index of the named workload.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn index_of(&self, name: &str) -> usize {
        self.workloads
            .iter()
            .position(|w| w.name == name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
    }

    /// Runs every not-yet-cached cell of `cells` on the suite's worker
    /// threads: all missing (workload, compiler) products are compiled
    /// first (in parallel), then every cell executes against the shared
    /// products. Subsequent [`Suite::run`] calls on these cells are cache
    /// hits.
    pub fn run_all(&mut self, cells: &[MatrixCell]) {
        self.run_all_on(cells, self.threads);
    }

    /// As [`Suite::run_all`] with an explicit thread count (1 = serial,
    /// same results bit-for-bit).
    pub fn run_all_on(&mut self, cells: &[MatrixCell], threads: usize) {
        let mut seen = HashSet::new();
        let pending: Vec<&MatrixCell> = cells
            .iter()
            .filter(|(i, c, h)| {
                !self.runs.contains_key(&(*i, c.name, h.name)) && seen.insert((*i, c.name, h.name))
            })
            .collect();
        if pending.is_empty() {
            return;
        }

        let workloads = &self.workloads;
        let profiles = &self.profiles;

        // Phase 1: compile each missing (workload, compiler) product once.
        let mut cseen = HashSet::new();
        let to_compile: Vec<(usize, &CompilerConfig)> = pending
            .iter()
            .filter(|(i, c, _)| {
                !self.compiled.contains_key(&(*i, c.name)) && cseen.insert((*i, c.name))
            })
            .map(|(i, c, _)| (*i, c))
            .collect();
        let products = parallel_map(&to_compile, threads, |&(i, c)| {
            compile_workload(&workloads[i], &profiles[i], c)
        });
        for ((i, c), product) in to_compile.into_iter().zip(products) {
            self.compiled.insert((i, c.name), product);
        }

        // Phase 2: execute every pending cell against the shared products.
        // Failures come back as values so one bad cell degrades to a
        // recorded failure instead of tearing down its worker thread.
        let compiled = &self.compiled;
        let runs = parallel_map(&pending, threads, |&&(i, ref c, ref h)| {
            try_execute_compiled(&workloads[i], &profiles[i], &compiled[&(i, c.name)], h)
        });
        for (&&(i, ref c, ref h), run) in pending.iter().zip(&runs) {
            match run {
                Ok(run) => {
                    self.runs.insert((i, c.name, h.name), run.clone());
                }
                Err(e) => self.failures.push(((i, c.name, h.name), e.clone())),
            }
        }
    }

    /// The full evaluation matrix: every workload × every paper compiler
    /// configuration × every hardware configuration the evaluation sweeps.
    pub fn full_matrix(&self) -> Vec<MatrixCell> {
        let mut cells = Vec::new();
        for i in 0..self.workloads.len() {
            for ccfg in CompilerConfig::paper_configs() {
                for hw in hw_sweep() {
                    cells.push((i, ccfg.clone(), hw));
                }
            }
        }
        cells
    }
}

/// The hardware configurations the evaluation sweeps (Figure 9 + §6.3).
pub fn hw_sweep() -> [HwConfig; 5] {
    [
        HwConfig::baseline(),
        HwConfig::with_begin_overhead(),
        HwConfig::single_inflight(),
        HwConfig::two_wide(),
        HwConfig::two_wide_half(),
    ]
}

impl Default for Suite {
    fn default() -> Self {
        Suite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let serial = parallel_map(&items, 1, |&x| x * 2);
        assert_eq!(doubled, serial);
    }

    #[test]
    fn full_matrix_covers_every_cell_once() {
        // Shape-only check (no execution): the matrix is the cross product
        // and contains no duplicate cells.
        let n_w = all_workloads().len();
        let n_c = CompilerConfig::paper_configs().len();
        let n_h = hw_sweep().len();
        // Build the matrix without profiling via a shape-only Suite.
        let suite = Suite {
            workloads: all_workloads(),
            profiles: Vec::new(),
            compiled: HashMap::new(),
            runs: HashMap::new(),
            failures: Vec::new(),
            threads: 1,
        };
        let cells = suite.full_matrix();
        assert_eq!(cells.len(), n_w * n_c * n_h);
        let unique: HashSet<_> = cells.iter().map(|(i, c, h)| (*i, c.name, h.name)).collect();
        assert_eq!(unique.len(), cells.len());
    }
}
