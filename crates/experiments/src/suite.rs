//! The experiment suite: memoized (workload × compiler × hardware) runs
//! shared by all figure/table generators.

use std::collections::HashMap;

use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, Workload};

use crate::runner::{profile_workload, run_workload, ProfiledWorkload, WorkloadRun};

/// Lazily-populated result cache over the benchmark suite.
pub struct Suite {
    workloads: Vec<Workload>,
    profiles: Vec<ProfiledWorkload>,
    runs: HashMap<(usize, &'static str, &'static str), WorkloadRun>,
}

impl Suite {
    /// Profiles every workload (the expensive interpreter pass) once.
    pub fn new() -> Self {
        let workloads = all_workloads();
        let profiles = workloads.iter().map(profile_workload).collect();
        Suite { workloads, profiles, runs: HashMap::new() }
    }

    /// The workloads, in Table 2 order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Profiling results for workload `i`.
    pub fn profile(&self, i: usize) -> &ProfiledWorkload {
        &self.profiles[i]
    }

    /// Returns (running and caching if needed) the run for workload index
    /// `i` under the given configurations.
    pub fn run(&mut self, i: usize, ccfg: &CompilerConfig, hw: &HwConfig) -> &WorkloadRun {
        let key = (i, ccfg.name, hw.name);
        if !self.runs.contains_key(&key) {
            let run = run_workload(&self.workloads[i], &self.profiles[i], ccfg, hw);
            self.runs.insert(key, run);
        }
        &self.runs[&key]
    }

    /// Convenience: run by workload name.
    ///
    /// # Panics
    /// Panics if the name is unknown.
    pub fn run_named(
        &mut self,
        name: &str,
        ccfg: &CompilerConfig,
        hw: &HwConfig,
    ) -> &WorkloadRun {
        let i = self
            .workloads
            .iter()
            .position(|w| w.name == name)
            .unwrap_or_else(|| panic!("unknown workload {name}"));
        self.run(i, ccfg, hw)
    }
}

impl Default for Suite {
    fn default() -> Self {
        Suite::new()
    }
}
