//! ASCII table rendering for experiment output, with paper-reference
//! columns so each regenerated figure/table can be eyeballed against the
//! original.

use std::fmt::Write as _;

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let line = |s: &mut String, cells: &[String]| {
            let mut first = true;
            for (c, w) in cells.iter().zip(&widths) {
                if !first {
                    let _ = write!(s, "  ");
                }
                let _ = write!(s, "{c:>w$}", w = w);
                first = false;
            }
            let _ = writeln!(s);
        };
        line(&mut s, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(s, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut s, r);
        }
        s
    }
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Formats a plain float with the given decimals.
pub fn num(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let out = t.render();
        assert!(out.contains("== demo =="));
        assert!(out.contains("longer"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
