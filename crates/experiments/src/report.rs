//! ASCII table rendering for experiment output, with paper-reference
//! columns so each regenerated figure/table can be eyeballed against the
//! original.

use std::fmt::Write as _;

/// A simple right-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let line = |s: &mut String, cells: &[String]| {
            let mut first = true;
            for (c, w) in cells.iter().zip(&widths) {
                if !first {
                    let _ = write!(s, "  ");
                }
                let _ = write!(s, "{c:>w$}", w = w);
                first = false;
            }
            let _ = writeln!(s);
        };
        line(&mut s, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(s, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut s, r);
        }
        s
    }
}

/// A minimal JSON object writer for benchmark artifacts (`BENCH_suite.json`
/// and friends) — no external serialization dependency.
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\n  \"{k}\": ");
    }

    /// Adds a string field (escapes quotes and backslashes).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let escaped: String = v
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                _ => vec![c],
            })
            .collect();
        let _ = write!(self.buf, "\"{escaped}\"");
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field with 6 significant decimals.
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v:.6}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a nested object field.
    pub fn obj(mut self, k: &str, v: JsonObj) -> Self {
        self.key(k);
        // Indent the nested object's lines one level.
        let nested = v.finish().replace('\n', "\n  ");
        self.buf.push_str(&nested);
        self
    }

    /// Adds a nested array field.
    pub fn arr(mut self, k: &str, v: JsonArr) -> Self {
        self.key(k);
        let nested = v.finish().replace('\n', "\n  ");
        self.buf.push_str(&nested);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push_str("\n}");
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// A minimal JSON array writer of objects, pairing with [`JsonObj`] (for
/// campaign-cell lists in benchmark artifacts).
#[derive(Debug, Clone)]
pub struct JsonArr {
    buf: String,
    first: bool,
}

impl JsonArr {
    /// Starts an empty array.
    pub fn new() -> Self {
        JsonArr {
            buf: String::from("["),
            first: true,
        }
    }

    /// Appends an object element.
    pub fn obj(mut self, v: JsonObj) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str("\n  ");
        let nested = v.finish().replace('\n', "\n  ");
        self.buf.push_str(&nested);
        self
    }

    /// Appends a string element.
    pub fn str(mut self, v: &str) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&v.replace('"', "\\\""));
        self.buf.push('"');
        self
    }

    /// Appends an integer element.
    pub fn int(mut self, v: u64) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&v.to_string());
        self
    }

    /// Closes the array and returns the JSON text.
    pub fn finish(mut self) -> String {
        if self.first {
            self.buf.push(']');
        } else {
            self.buf.push_str("\n]");
        }
        self.buf
    }
}

impl Default for JsonArr {
    fn default() -> Self {
        JsonArr::new()
    }
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Formats a plain float with the given decimals.
pub fn num(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let out = t.render();
        assert!(out.contains("== demo =="));
        assert!(out.contains("longer"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_arr_renders_elements() {
        assert_eq!(JsonArr::new().finish(), "[]");
        let arr = JsonArr::new()
            .obj(JsonObj::new().int("a", 1))
            .obj(JsonObj::new().int("a", 2));
        let out = JsonObj::new().arr("cells", arr).finish();
        assert!(out.contains("\"cells\": ["));
        assert!(out.contains("\"a\": 1"));
        assert!(out.contains("\"a\": 2"));
        // Balanced brackets/braces.
        assert_eq!(out.matches('[').count(), out.matches(']').count());
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn json_obj_renders_nested_fields() {
        let inner = JsonObj::new().num("wall_s", 1.25).int("cells", 3);
        let out = JsonObj::new()
            .str("schema", "demo \"v1\"")
            .bool("ok", true)
            .obj("serial", inner)
            .finish();
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"schema\": \"demo \\\"v1\\\"\""));
        assert!(out.contains("\"ok\": true"));
        assert!(out.contains("\"wall_s\": 1.250000"));
        assert!(out.contains("\"cells\": 3"));
    }
}
