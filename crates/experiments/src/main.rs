//! Prints every regenerated table and figure.

use hasp_experiments::figures;
use hasp_experiments::Suite;

fn main() {
    let t0 = std::time::Instant::now();
    let mut suite = Suite::new();
    println!("{}", figures::table2(&suite));
    let (_, s) = figures::fig1(&mut suite);
    println!("{s}");
    let (_, s) = figures::fig7(&mut suite);
    println!("{s}");
    let (_, s) = figures::fig8(&mut suite);
    println!("{s}");
    let (_, s) = figures::table3(&mut suite);
    println!("{s}");
    let (_, s) = figures::fig9(&mut suite);
    println!("{s}");
    let (_, s) = figures::sec62(&mut suite);
    println!("{s}");
    let (_, s) = figures::sec63(&mut suite);
    println!("{s}");
    eprintln!("total wall time: {:.1}s", t0.elapsed().as_secs_f64());
}
