//! Experiment driver: prints every regenerated table and figure, or — with
//! the `bench-suite` subcommand — benchmarks the serial vs parallel
//! experiment pipeline over the full evaluation matrix and writes
//! `BENCH_suite.json`, or — with the `faults` subcommand — runs the
//! fault-injection campaign and writes the `BENCH_faults.json` resilience
//! report (`faults --smoke` for the CI-sized slice; `faults --knee` instead
//! binary-searches each workload's highest tolerated conflict rate and
//! writes `BENCH_knee.json`), or — with the `bench-dispatch` subcommand —
//! races the per-uop and superblock dispatch engines over the suite and
//! writes `BENCH_dispatch.json`, or — with the `serve` subcommand — runs
//! the multi-tenant service harness (pooled machines, one lock-free
//! published code cache) and writes `BENCH_service.json`.

use hasp_experiments::figures;
use hasp_experiments::report::JsonObj;
use hasp_experiments::{dispatch_bench, faults, service, Suite};

fn main() {
    match std::env::args().nth(1).as_deref() {
        None => print_figures(),
        Some("bench-suite") => bench_suite(),
        Some("bench-dispatch") => {
            let smoke = std::env::args().any(|a| a == "--smoke");
            bench_dispatch(smoke);
        }
        Some("serve") => {
            let smoke = std::env::args().any(|a| a == "--smoke");
            serve(smoke);
        }
        Some("mt") => {
            let smoke = std::env::args().any(|a| a == "--smoke");
            mt_bench(smoke);
        }
        Some("faults") => {
            let smoke = std::env::args().any(|a| a == "--smoke");
            // `--injected` is accepted as the explicit name for what this
            // campaign always is: the deterministic fault-injection ablation
            // (organic conflicts live in the `mt` harness).
            let injected = std::env::args().any(|a| a == "--injected");
            if std::env::args().any(|a| a == "--knee") {
                knee_sweep(smoke);
            } else {
                fault_campaign(smoke, injected);
            }
        }
        Some(other) => {
            eprintln!(
                "unknown subcommand `{other}` (expected no argument, `bench-suite`, \
                 `bench-dispatch [--smoke]`, `serve [--smoke]`, `mt [--smoke]`, or \
                 `faults [--knee] [--injected] [--smoke]`)"
            );
            std::process::exit(2);
        }
    }
}

fn serve(smoke: bool) {
    eprintln!(
        "serve: {} tenant mix, worker-pool scaling sweep",
        if smoke { "smoke" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let report = service::run_service(smoke);
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", report.table());
    let json = report.json(wall);
    // The smoke slice goes to its own (gitignored) file so a CI run never
    // clobbers the committed full artifact.
    let path = if smoke {
        "BENCH_service_smoke.json"
    } else {
        "BENCH_service.json"
    };
    std::fs::write(path, &json).expect("write service bench artifact");
    eprintln!(
        "wrote {path} (top speedup {:.2}x, deterministic: {}, in {wall:.1}s)",
        report.top_speedup(),
        report.deterministic
    );
    if !report.all_passed() || !report.scaling_ok() || !report.deterministic {
        for l in &report.legs {
            if l.failures > 0 || !l.conservation || l.retired_after > 0 {
                eprintln!(
                    "FAILED leg: {} workers ({} failures, conservation {}, {} unreclaimed)",
                    l.workers, l.failures, l.conservation, l.retired_after
                );
            }
        }
        if !report.scaling_ok() {
            eprintln!("FAILED: worker scaling regressed below the 1-worker floor");
        }
        if !report.deterministic {
            eprintln!("FAILED: request timings varied across worker counts");
        }
        std::process::exit(1);
    }
}

fn mt_bench(smoke: bool) {
    eprintln!(
        "mt: {} run, real threads over the shared coherence directory",
        if smoke { "smoke" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let report = hasp_experiments::run_mt(smoke);
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", report.table());
    let json = report.json(wall);
    // The smoke slice goes to its own (gitignored) file so a CI run never
    // clobbers the committed full artifact.
    let path = if smoke {
        "BENCH_mt_smoke.json"
    } else {
        "BENCH_mt.json"
    };
    std::fs::write(path, &json).expect("write mt bench artifact");
    eprintln!(
        "wrote {path} ({} emergent aborts, max tier {}, host cores {}, in {wall:.1}s)",
        report.emergent_total(),
        report.max_tier(),
        report.host_cores
    );
    let mut failed = false;
    if !report.all_conserved() {
        eprintln!("FAILED: directory conservation identity violated");
        failed = true;
    }
    if report.contention.emergent == 0 {
        eprintln!("FAILED: contention phase produced no emergent conflicts (vacuous run)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn bench_dispatch(smoke: bool) {
    eprintln!(
        "bench-dispatch: {} sweep, per-uop vs superblock",
        if smoke { "smoke" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let report = dispatch_bench::run_bench(smoke);
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", report.table());
    let json = report.json(smoke, wall);
    // The smoke slice goes to its own file so a CI run never clobbers the
    // committed full-suite artifact.
    let path = if smoke {
        "BENCH_dispatch_smoke.json"
    } else {
        "BENCH_dispatch.json"
    };
    std::fs::write(path, &json).expect("write dispatch bench artifact");
    eprintln!(
        "wrote {path} (geomean speedup {:.2}x, cache-off ceiling {:.2}x, \
         predictor uplift {:.2}x, in {wall:.1}s)",
        report.geomean_speedup(),
        report.geomean_cache_off(),
        report.geomean_pred_speedup()
    );
}

fn fault_campaign(smoke: bool, injected: bool) {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    eprintln!(
        "fault campaign ({}): {} sweep on {threads} threads",
        if injected {
            "injected ablation, explicit"
        } else {
            "injected ablation"
        },
        if smoke { "smoke" } else { "full" }
    );
    let t0 = std::time::Instant::now();
    let report = faults::run_campaign(smoke, threads);
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", report.table());
    let json = report.json(smoke, threads, wall);
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    eprintln!(
        "wrote BENCH_faults.json ({} cells in {wall:.1}s)",
        report.cells.len()
    );
    if !report.all_passed() || !report.tiers_consistent() {
        for c in report.failures() {
            eprintln!(
                "FAILED cell: {} / {} @ {}: {}",
                c.workload,
                c.kind.name(),
                c.rate,
                c.result.as_ref().unwrap_err()
            );
        }
        for r in &report.reforms {
            if let Some(e) = &r.error {
                eprintln!("FAILED reform row: {}: {e}", r.workload);
            }
        }
        if !report.tiers_consistent() {
            eprintln!("FAILED: governor tier counters imbalanced (enters != exits + live)");
        }
        std::process::exit(1);
    }
}

fn knee_sweep(smoke: bool) {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    eprintln!(
        "knee sweep: {} workload set on {threads} threads (threshold {}x)",
        if smoke { "smoke" } else { "full" },
        faults::KNEE_THRESHOLD
    );
    let t0 = std::time::Instant::now();
    let report = faults::run_knee(smoke, threads);
    let wall = t0.elapsed().as_secs_f64();
    print!("{}", report.table());
    let json = report.json(smoke, threads, wall);
    // The smoke slice goes to its own (gitignored) file so a CI run never
    // clobbers the committed full-suite artifact.
    let path = if smoke {
        "BENCH_knee_smoke.json"
    } else {
        "BENCH_knee.json"
    };
    std::fs::write(path, &json).expect("write knee artifact");
    eprintln!(
        "wrote {path} ({} workloads in {wall:.1}s)",
        report.rows.len()
    );
    if !report.all_passed() {
        for r in &report.rows {
            if let Some(e) = &r.error {
                eprintln!("FAILED row: {}: {e}", r.workload);
            }
        }
        std::process::exit(1);
    }
}

fn print_figures() {
    let t0 = std::time::Instant::now();
    let mut suite = Suite::new();
    // Fill the whole matrix through the parallel pipeline up front; the
    // figure generators below then read from cache.
    let cells = suite.full_matrix();
    suite.run_all(&cells);
    println!("{}", figures::table2(&suite));
    let (_, s) = figures::fig1(&mut suite);
    println!("{s}");
    let (_, s) = figures::fig7(&mut suite);
    println!("{s}");
    let (_, s) = figures::fig8(&mut suite);
    println!("{s}");
    let (_, s) = figures::table3(&mut suite);
    println!("{s}");
    let (_, s) = figures::fig9(&mut suite);
    println!("{s}");
    let (_, s) = figures::sec62(&mut suite);
    println!("{s}");
    let (_, s) = figures::sec63(&mut suite);
    println!("{s}");
    let (_, s) = figures::uop_mix(&mut suite);
    println!("{s}");
    eprintln!(
        "total wall time: {:.1}s ({} worker threads)",
        t0.elapsed().as_secs_f64(),
        suite.threads()
    );
}

/// Times one full-matrix fill at `threads` workers on a fresh suite.
/// Returns (suite, wall seconds, total retired uops across cells).
fn timed_fill(cells_threads: usize) -> (Suite, f64, u64) {
    // Profiling happens before the clock starts: the benchmark measures the
    // compile + execute pipeline, which is what `run_all` parallelizes.
    let mut suite = Suite::with_threads(cells_threads);
    let cells = suite.full_matrix();
    let t0 = std::time::Instant::now();
    suite.run_all_on(&cells, cells_threads);
    let wall = t0.elapsed().as_secs_f64();
    let uops: u64 = cells
        .iter()
        .map(|(i, c, h)| suite.run(*i, c, h).stats.uops)
        .sum();
    (suite, wall, uops)
}

fn bench_suite() {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let n_cells = {
        let probe = Suite::with_threads(1);
        probe.full_matrix().len()
    };
    eprintln!("bench-suite: {n_cells} cells, serial then {threads}-thread parallel");

    let (serial_suite, serial_s, serial_uops) = timed_fill(1);
    eprintln!("  serial  : {serial_s:.2}s");
    let (parallel_suite, parallel_s, parallel_uops) = timed_fill(threads);
    eprintln!("  parallel: {parallel_s:.2}s");

    // Bit-identical determinism across thread counts.
    let cells = serial_suite.full_matrix();
    let mut deterministic = serial_uops == parallel_uops;
    for (i, c, h) in &cells {
        let a = serial_suite.cached(*i, c.name, h.name);
        let b = parallel_suite.cached(*i, c.name, h.name);
        if a != b {
            deterministic = false;
            eprintln!(
                "  NONDETERMINISTIC cell: workload {i} {}/{}",
                c.name, h.name
            );
        }
    }

    let leg = |wall: f64, uops: u64| {
        JsonObj::new()
            .num("wall_s", wall)
            .num("cells_per_s", n_cells as f64 / wall)
            .num("retired_uops_per_s", uops as f64 / wall)
            .int("retired_uops", uops)
    };
    let json = JsonObj::new()
        .str("schema", "hasp-bench-suite-v1")
        .int("cores", threads as u64)
        .int("threads", threads as u64)
        .int("cells", n_cells as u64)
        .int(
            "compiled_products",
            parallel_suite.compiled_products() as u64,
        )
        .obj("serial", leg(serial_s, serial_uops))
        .obj("parallel", leg(parallel_s, parallel_uops))
        .num("speedup", serial_s / parallel_s)
        .bool("deterministic", deterministic)
        .finish();
    std::fs::write("BENCH_suite.json", &json).expect("write BENCH_suite.json");
    println!("{json}");
    eprintln!(
        "wrote BENCH_suite.json (speedup {:.2}x on {threads} cores)",
        serial_s / parallel_s
    );
    assert!(
        deterministic,
        "parallel run_all must be bit-identical to serial"
    );
}
