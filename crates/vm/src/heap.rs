//! The object heap.
//!
//! Every object gets a stable simulated byte address so the hardware crate
//! can run a real cache model (64-byte lines, per-line speculative read/write
//! bits) over heap traffic. Layout per object:
//!
//! ```text
//! base + 0   class word            (not accessed by generated code)
//! base + 8   lock word             (monitor enter/exit)
//! base + 16  field 0 / array length
//! base + 24  field 1 / element 0
//! ...
//! ```

use crate::bytecode::ClassId;
use crate::value::{ObjId, Value};

/// Size in bytes of one heap word.
pub const WORD: u64 = 8;
/// Size in bytes of an object header (class word + lock word).
pub const HEADER: u64 = 2 * WORD;

/// A single mutable heap location, used by the hardware undo log to roll back
/// speculative stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapCell {
    /// `object.fields[index]`
    Field(ObjId, u16),
    /// `array[index]`
    Elem(ObjId, u32),
    /// The object's monitor lock word.
    Lock(ObjId),
}

#[derive(Debug, Clone)]
struct Object {
    class: ClassId,
    base: u64,
    /// Lock word: 0 = free, otherwise the owning thread id.
    lock: i64,
    /// Monitor recursion depth.
    lock_count: i64,
    fields: Vec<Value>,
    array: Option<Vec<Value>>,
}

/// The garbage-free object heap (allocation only; workloads are sized so
/// collection is unnecessary, as in the paper's measured samples).
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Object>,
    next_addr: u64,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Heap {
            objects: Vec::new(),
            next_addr: 0x1000,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an instance of `class` with `nfields` zeroed fields.
    pub fn alloc_object(&mut self, class: ClassId, nfields: usize) -> ObjId {
        self.alloc(class, vec![Value::Int(0); nfields], None)
    }

    /// Allocates an integer array of `len` zeroed elements.
    ///
    /// Arrays carry a synthetic class id of `u32::MAX`.
    pub fn alloc_array(&mut self, len: usize) -> ObjId {
        self.alloc(
            ClassId(u32::MAX),
            Vec::new(),
            Some(vec![Value::Int(0); len]),
        )
    }

    fn alloc(&mut self, class: ClassId, fields: Vec<Value>, array: Option<Vec<Value>>) -> ObjId {
        let payload_words = fields.len() as u64 + array.as_ref().map_or(0, |a| a.len() as u64 + 1);
        let size = HEADER + payload_words * WORD;
        let base = self.next_addr;
        // Keep objects line-aligned-ish: round size up to a word multiple and
        // pad to avoid pathological false sharing between unrelated objects.
        self.next_addr += size.next_multiple_of(16);
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(Object {
            class,
            base,
            lock: 0,
            lock_count: 0,
            fields,
            array,
        });
        id
    }

    /// The dynamic class of an object.
    ///
    /// # Panics
    /// Panics if `id` is stale (never happens for ids produced by this heap).
    pub fn class_of(&self, id: ObjId) -> ClassId {
        self.objects[id.0 as usize].class
    }

    /// Reads `obj.fields[field]`.
    ///
    /// # Panics
    /// Panics if the field index is out of range for the object's layout
    /// (ill-formed bytecode; the builder prevents this).
    pub fn get_field(&self, id: ObjId, field: u16) -> Value {
        self.objects[id.0 as usize].fields[field as usize]
    }

    /// Writes `obj.fields[field]`.
    pub fn set_field(&mut self, id: ObjId, field: u16, v: Value) {
        self.objects[id.0 as usize].fields[field as usize] = v;
    }

    /// Array length, or `None` if the object is not an array.
    pub fn array_len(&self, id: ObjId) -> Option<usize> {
        self.objects[id.0 as usize].array.as_ref().map(Vec::len)
    }

    /// Reads `arr[idx]`; the caller has already bounds-checked.
    pub fn array_get(&self, id: ObjId, idx: u32) -> Value {
        self.objects[id.0 as usize]
            .array
            .as_ref()
            .expect("not an array")[idx as usize]
    }

    /// Writes `arr[idx]`; the caller has already bounds-checked.
    pub fn array_set(&mut self, id: ObjId, idx: u32, v: Value) {
        self.objects[id.0 as usize]
            .array
            .as_mut()
            .expect("not an array")[idx as usize] = v;
    }

    /// Reads the monitor lock word (0 = free, else owner thread id).
    pub fn lock_word(&self, id: ObjId) -> i64 {
        self.objects[id.0 as usize].lock
    }

    /// Monitor recursion depth.
    pub fn lock_count(&self, id: ObjId) -> i64 {
        self.objects[id.0 as usize].lock_count
    }

    /// Acquires the monitor for `thread`. Returns `false` if held by another
    /// thread (the single-mutator simulation never blocks; contention is
    /// injected by the hardware crate as conflicts instead).
    pub fn monitor_enter(&mut self, id: ObjId, thread: i64) -> bool {
        let o = &mut self.objects[id.0 as usize];
        if o.lock == 0 {
            o.lock = thread;
            o.lock_count = 1;
            true
        } else if o.lock == thread {
            o.lock_count += 1;
            true
        } else {
            false
        }
    }

    /// Releases the monitor. Returns `false` on an illegal release.
    pub fn monitor_exit(&mut self, id: ObjId, thread: i64) -> bool {
        let o = &mut self.objects[id.0 as usize];
        if o.lock != thread || o.lock_count <= 0 {
            return false;
        }
        o.lock_count -= 1;
        if o.lock_count == 0 {
            o.lock = 0;
        }
        true
    }

    /// Generic read of a mutable heap location (undo-log support).
    pub fn read_cell(&self, cell: HeapCell) -> i64 {
        match cell {
            HeapCell::Field(o, f) => self.get_field(o, f).encode(),
            HeapCell::Elem(o, i) => self.array_get(o, i).encode(),
            HeapCell::Lock(o) => {
                // Pack lock word and count into one loggable word.
                let obj = &self.objects[o.0 as usize];
                (obj.lock << 32) | (obj.lock_count & 0xffff_ffff)
            }
        }
    }

    /// Generic write of a mutable heap location (undo-log support).
    pub fn write_cell(&mut self, cell: HeapCell, bits: i64) {
        match cell {
            HeapCell::Field(o, f) => self.set_field(o, f, Value::decode(bits)),
            HeapCell::Elem(o, i) => self.array_set(o, i, Value::decode(bits)),
            HeapCell::Lock(o) => {
                let obj = &mut self.objects[o.0 as usize];
                obj.lock = bits >> 32;
                obj.lock_count = bits & 0xffff_ffff;
            }
        }
    }

    /// Simulated byte address of a heap location (for the cache model).
    pub fn addr_of(&self, cell: HeapCell) -> u64 {
        let base = |o: ObjId| self.objects[o.0 as usize].base;
        match cell {
            HeapCell::Lock(o) => base(o) + WORD,
            HeapCell::Field(o, f) => base(o) + HEADER + u64::from(f) * WORD,
            // Element addresses skip the length word.
            HeapCell::Elem(o, i) => base(o) + HEADER + WORD + u64::from(i) * WORD,
        }
    }

    /// Simulated byte address of the array-length word.
    pub fn addr_of_len(&self, id: ObjId) -> u64 {
        self.objects[id.0 as usize].base + HEADER
    }

    /// Simulated address and mutable storage slot of `obj.fields[field]` in
    /// one object lookup — the hot-path fusion of [`Self::addr_of`] with
    /// [`Self::read_cell`]/[`Self::write_cell`] on a field cell.
    pub fn field_slot(&mut self, id: ObjId, field: u16) -> (u64, &mut Value) {
        let o = &mut self.objects[id.0 as usize];
        (
            o.base + HEADER + u64::from(field) * WORD,
            &mut o.fields[field as usize],
        )
    }

    /// Simulated address and mutable storage slot of `arr[idx]` in one
    /// object lookup; the caller has already bounds-checked.
    pub fn elem_slot(&mut self, id: ObjId, idx: u32) -> (u64, &mut Value) {
        let o = &mut self.objects[id.0 as usize];
        (
            o.base + HEADER + WORD + u64::from(idx) * WORD,
            &mut o.array.as_mut().expect("not an array")[idx as usize],
        )
    }

    /// Simulated address of the array-length word plus the length itself,
    /// in one object lookup.
    ///
    /// # Panics
    /// Panics if the object is not an array.
    pub fn len_slot(&self, id: ObjId) -> (u64, usize) {
        let o = &self.objects[id.0 as usize];
        (o.base + HEADER, o.array.as_ref().expect("array").len())
    }

    /// Simulated byte address of the object header (for `New` traffic).
    pub fn addr_of_header(&self, id: ObjId) -> u64 {
        self.objects[id.0 as usize].base
    }

    /// Marks the current allocation frontier (hardware checkpoint support).
    pub fn alloc_mark(&self) -> HeapMark {
        HeapMark {
            objects: self.objects.len(),
            next_addr: self.next_addr,
        }
    }

    /// Discards every object allocated after `mark` (rollback of an aborted
    /// atomic region; such objects are only reachable from rolled-back
    /// state).
    ///
    /// # Panics
    /// Panics if the heap shrank below the mark since it was taken.
    pub fn truncate(&mut self, mark: &HeapMark) {
        assert!(self.objects.len() >= mark.objects, "heap shrank below mark");
        self.objects.truncate(mark.objects);
        self.next_addr = mark.next_addr;
    }
}

/// A heap allocation frontier, used to roll back allocations performed
/// inside an aborted atomic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapMark {
    objects: usize,
    next_addr: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 3);
        h.set_field(o, 1, Value::Int(42));
        assert_eq!(h.get_field(o, 1), Value::Int(42));
        assert_eq!(h.get_field(o, 0), Value::Int(0));
        assert_eq!(h.class_of(o), ClassId(0));

        let a = h.alloc_array(4);
        assert_eq!(h.array_len(a), Some(4));
        h.array_set(a, 3, Value::from(o));
        assert_eq!(h.array_get(a, 3), Value::from(o));
        assert_eq!(h.array_len(o), None);
    }

    #[test]
    fn addresses_distinct_and_stable() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 2);
        let a = h.alloc_array(8);
        let f0 = h.addr_of(HeapCell::Field(o, 0));
        let f1 = h.addr_of(HeapCell::Field(o, 1));
        assert_eq!(f1 - f0, WORD);
        assert_eq!(h.addr_of(HeapCell::Lock(o)), f0 - WORD);
        let e0 = h.addr_of(HeapCell::Elem(a, 0));
        assert_eq!(e0 - h.addr_of_len(a), WORD);
        assert!(
            e0 > f1,
            "array allocated after object sits at higher addresses"
        );
    }

    #[test]
    fn monitors_nest() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 0);
        assert!(h.monitor_enter(o, 1));
        assert!(h.monitor_enter(o, 1));
        assert_eq!(h.lock_count(o), 2);
        assert!(!h.monitor_enter(o, 2), "held by thread 1");
        assert!(h.monitor_exit(o, 1));
        assert!(h.monitor_exit(o, 1));
        assert_eq!(h.lock_word(o), 0);
        assert!(!h.monitor_exit(o, 1), "not held");
    }

    #[test]
    fn cell_roundtrip() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId(0), 1);
        for cell in [HeapCell::Field(o, 0), HeapCell::Lock(o)] {
            let old = h.read_cell(cell);
            h.write_cell(cell, 0x1234_0005);
            assert_eq!(h.read_cell(cell), 0x1234_0005);
            h.write_cell(cell, old);
            assert_eq!(h.read_cell(cell), old);
        }
        // Lock packing specifically.
        assert!(h.monitor_enter(o, 1));
        let packed = h.read_cell(HeapCell::Lock(o));
        assert!(h.monitor_exit(o, 1));
        h.write_cell(HeapCell::Lock(o), packed);
        assert_eq!(h.lock_word(o), 1);
        assert_eq!(h.lock_count(o), 1);
    }
}
