//! The profiling interpreter — the VM's first execution tier.
//!
//! Besides executing bytecode, the interpreter optionally collects the
//! profiles (branch bias, switch case counts, receiver histograms, block
//! counts) that drive region formation and inlining, mirroring the
//! instrumenting first-pass compiler of the paper's JVM (§4, §5).

use crate::bytecode::{Instr, Intrinsic, MethodId};
use crate::class::Program;
use crate::env::Env;
use crate::error::{Trap, VmError};
use crate::heap::Heap;
use crate::profile::Profile;
use crate::value::{ObjId, Value};

/// The mutator thread id used by the single simulated thread.
pub const MUTATOR_THREAD: i64 = 1;

/// Interpreter state over a program.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    /// The object heap (shared with compiled execution in mixed flows).
    pub heap: Heap,
    /// Observable side effects (checksum, RNG, markers).
    pub env: Env,
    /// Collected profile (only updated while [`Interp::profiling`] is on).
    pub profile: Profile,
    /// Whether profile counters are updated.
    pub profiling: bool,
    /// Total bytecode instructions executed.
    pub steps: u64,
    fuel: u64,
    max_depth: usize,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with a fresh heap and default environment.
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            heap: Heap::new(),
            env: Env::default(),
            profile: Profile::new(),
            profiling: false,
            steps: 0,
            fuel: u64::MAX,
            max_depth: 512,
        }
    }

    /// Sets the maximum number of instructions to execute before
    /// [`VmError::FuelExhausted`]. Guards tests against runaway loops.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Enables profile collection.
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self
    }

    /// Runs the program's entry method with `args`.
    ///
    /// # Errors
    /// Returns a [`VmError`] on a trap, fuel exhaustion, stack overflow, or
    /// ill-typed bytecode.
    pub fn run(&mut self, args: &[Value]) -> Result<Option<Value>, VmError> {
        self.call(self.program.entry(), args, 0)
    }

    /// Invokes an arbitrary method (used by tests and the experiment driver).
    ///
    /// # Errors
    /// Same conditions as [`Interp::run`].
    pub fn call(
        &mut self,
        m: MethodId,
        args: &[Value],
        depth: usize,
    ) -> Result<Option<Value>, VmError> {
        if depth >= self.max_depth {
            return Err(VmError::StackOverflow);
        }
        let method = self.program.method(m);
        assert_eq!(
            args.len(),
            method.argc as usize,
            "arity mismatch calling {}",
            method.name
        );
        let mut regs = vec![Value::Int(0); method.regs as usize];
        regs[..args.len()].copy_from_slice(args);

        if self.profiling {
            self.profile.method_mut(m).invocations += 1;
        }
        if method.synchronized {
            let recv = self.require_obj(regs[0], m, 0)?;
            self.heap.monitor_enter(recv, MUTATOR_THREAD);
        }
        let result = self.exec_body(m, &mut regs, depth);
        if method.synchronized {
            // Balanced on every exit path (our methods return normally or the
            // whole run fails, so unconditional release is correct).
            if let Value::Ref(Some(recv)) = regs[0] {
                self.heap.monitor_exit(recv, MUTATOR_THREAD);
            }
        }
        result
    }

    fn exec_body(
        &mut self,
        m: MethodId,
        regs: &mut [Value],
        depth: usize,
    ) -> Result<Option<Value>, VmError> {
        let method = self.program.method(m);
        let code = &method.code;
        let mut pc = 0usize;
        loop {
            if self.fuel == 0 {
                return Err(VmError::FuelExhausted);
            }
            self.fuel -= 1;
            self.steps += 1;
            if self.profiling {
                *self.profile.method_mut(m).exec.entry(pc).or_insert(0) += 1;
            }
            let instr = &code[pc];
            match instr {
                Instr::Const { dst, value } => regs[dst.0 as usize] = Value::Int(*value),
                Instr::ConstNull { dst } => regs[dst.0 as usize] = Value::NULL,
                Instr::Move { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
                Instr::Bin { op, dst, a, b } => {
                    let av = self.require_int(regs[a.0 as usize], m, pc)?;
                    let bv = self.require_int(regs[b.0 as usize], m, pc)?;
                    let r = op.eval(av, bv).ok_or(VmError::Trap {
                        trap: Trap::DivByZero,
                        method: m,
                        pc,
                    })?;
                    regs[dst.0 as usize] = Value::Int(r);
                }
                Instr::Cmp { op, dst, a, b } => {
                    let t = self.eval_cmp(*op, regs[a.0 as usize], regs[b.0 as usize], m, pc)?;
                    regs[dst.0 as usize] = Value::Int(i64::from(t));
                }
                Instr::Branch { op, a, b, target } => {
                    let taken =
                        self.eval_cmp(*op, regs[a.0 as usize], regs[b.0 as usize], m, pc)?;
                    if self.profiling {
                        let e = self
                            .profile
                            .method_mut(m)
                            .branches
                            .entry(pc)
                            .or_insert((0, 0));
                        if taken {
                            e.0 += 1;
                        } else {
                            e.1 += 1;
                        }
                    }
                    if taken {
                        pc = *target;
                        continue;
                    }
                }
                Instr::Jump { target } => {
                    pc = *target;
                    continue;
                }
                Instr::Switch {
                    src,
                    targets,
                    default,
                } => {
                    let v = self.require_int(regs[src.0 as usize], m, pc)?;
                    let case = if v >= 0 && (v as usize) < targets.len() {
                        v as usize
                    } else {
                        targets.len()
                    };
                    if self.profiling {
                        let counts = self
                            .profile
                            .method_mut(m)
                            .switches
                            .entry(pc)
                            .or_insert_with(|| vec![0; targets.len() + 1]);
                        counts[case] += 1;
                    }
                    pc = if case < targets.len() {
                        targets[case]
                    } else {
                        *default
                    };
                    continue;
                }
                Instr::New { dst, class } => {
                    let n = self.program.class(*class).field_count();
                    let o = self.heap.alloc_object(*class, n);
                    regs[dst.0 as usize] = Value::from(o);
                }
                Instr::NewArray { dst, len } => {
                    let n = self.require_int(regs[len.0 as usize], m, pc)?;
                    if n < 0 {
                        return Err(VmError::Trap {
                            trap: Trap::OutOfBounds,
                            method: m,
                            pc,
                        });
                    }
                    let o = self.heap.alloc_array(n as usize);
                    regs[dst.0 as usize] = Value::from(o);
                }
                Instr::GetField { dst, obj, field } => {
                    let o = self.check_null(regs[obj.0 as usize], m, pc)?;
                    regs[dst.0 as usize] = self.heap.get_field(o, field.0);
                }
                Instr::PutField { obj, field, src } => {
                    let o = self.check_null(regs[obj.0 as usize], m, pc)?;
                    self.heap.set_field(o, field.0, regs[src.0 as usize]);
                }
                Instr::ALoad { dst, arr, idx } => {
                    let (o, i) =
                        self.check_array(regs[arr.0 as usize], regs[idx.0 as usize], m, pc)?;
                    regs[dst.0 as usize] = self.heap.array_get(o, i);
                }
                Instr::AStore { arr, idx, src } => {
                    let (o, i) =
                        self.check_array(regs[arr.0 as usize], regs[idx.0 as usize], m, pc)?;
                    self.heap.array_set(o, i, regs[src.0 as usize]);
                }
                Instr::ArrayLen { dst, arr } => {
                    let o = self.check_null(regs[arr.0 as usize], m, pc)?;
                    let n = self.heap.array_len(o).ok_or(VmError::TypeMismatch {
                        method: m,
                        pc,
                        what: "arraylen on non-array",
                    })?;
                    regs[dst.0 as usize] = Value::Int(n as i64);
                }
                Instr::Call {
                    dst,
                    method: callee,
                    args,
                } => {
                    let argv: Vec<Value> = args.iter().map(|r| regs[r.0 as usize]).collect();
                    let ret = self.call(*callee, &argv, depth + 1)?;
                    if let Some(d) = dst {
                        regs[d.0 as usize] = ret.unwrap_or(Value::Int(0));
                    }
                }
                Instr::CallVirtual {
                    dst,
                    slot,
                    recv,
                    args,
                } => {
                    let o = self.check_null(regs[recv.0 as usize], m, pc)?;
                    let class = self.heap.class_of(o);
                    if self.profiling {
                        *self
                            .profile
                            .method_mut(m)
                            .receivers
                            .entry(pc)
                            .or_default()
                            .entry(class)
                            .or_insert(0) += 1;
                    }
                    let callee = self.program.resolve_virtual(class, *slot);
                    let mut argv = vec![regs[recv.0 as usize]];
                    argv.extend(args.iter().map(|r| regs[r.0 as usize]));
                    let ret = self.call(callee, &argv, depth + 1)?;
                    if let Some(d) = dst {
                        regs[d.0 as usize] = ret.unwrap_or(Value::Int(0));
                    }
                }
                Instr::Return { src } => {
                    return Ok(src.map(|r| regs[r.0 as usize]));
                }
                Instr::MonitorEnter { obj } => {
                    let o = self.check_null(regs[obj.0 as usize], m, pc)?;
                    self.heap.monitor_enter(o, MUTATOR_THREAD);
                }
                Instr::MonitorExit { obj } => {
                    let o = self.check_null(regs[obj.0 as usize], m, pc)?;
                    if !self.heap.monitor_exit(o, MUTATOR_THREAD) {
                        return Err(VmError::Trap {
                            trap: Trap::IllegalMonitorState,
                            method: m,
                            pc,
                        });
                    }
                }
                Instr::InstanceOf { dst, obj, class } => {
                    let is = match regs[obj.0 as usize] {
                        Value::Ref(Some(o)) => {
                            self.program.is_subclass(self.heap.class_of(o), *class)
                        }
                        Value::Ref(None) => false,
                        Value::Int(_) => {
                            return Err(VmError::TypeMismatch {
                                method: m,
                                pc,
                                what: "instanceof on int",
                            })
                        }
                    };
                    regs[dst.0 as usize] = Value::Int(i64::from(is));
                }
                Instr::CheckCast { obj, class } => match regs[obj.0 as usize] {
                    Value::Ref(None) => {}
                    Value::Ref(Some(o)) => {
                        if !self.program.is_subclass(self.heap.class_of(o), *class) {
                            return Err(VmError::Trap {
                                trap: Trap::ClassCast,
                                method: m,
                                pc,
                            });
                        }
                    }
                    Value::Int(_) => {
                        return Err(VmError::TypeMismatch {
                            method: m,
                            pc,
                            what: "checkcast on int",
                        })
                    }
                },
                Instr::Safepoint => {
                    // Poll the yield flag; in this simulation it is never set.
                }
                Instr::Intrin { kind, dst, args } => {
                    let out = match kind {
                        Intrinsic::Checksum => {
                            let v = regs[args[0].0 as usize];
                            self.env.checksum_push(v.encode());
                            None
                        }
                        Intrinsic::NextRandom => Some(Value::Int(self.env.next_random())),
                        Intrinsic::YieldFlag => Some(Value::Int(0)),
                    };
                    if let (Some(d), Some(v)) = (dst, out) {
                        regs[d.0 as usize] = v;
                    }
                }
                Instr::Marker { id } => {
                    self.env.hit_marker(*id);
                }
            }
            pc += 1;
        }
    }

    fn eval_cmp(
        &self,
        op: crate::bytecode::CmpOp,
        a: Value,
        b: Value,
        m: MethodId,
        pc: usize,
    ) -> Result<bool, VmError> {
        use crate::bytecode::CmpOp;
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(op.eval_int(x, y)),
            (Value::Ref(x), Value::Ref(y)) => match op {
                CmpOp::Eq => Ok(x == y),
                CmpOp::Ne => Ok(x != y),
                _ => Err(VmError::TypeMismatch {
                    method: m,
                    pc,
                    what: "ordered cmp on refs",
                }),
            },
            _ => Err(VmError::TypeMismatch {
                method: m,
                pc,
                what: "cmp int vs ref",
            }),
        }
    }

    fn require_int(&self, v: Value, m: MethodId, pc: usize) -> Result<i64, VmError> {
        match v {
            Value::Int(x) => Ok(x),
            Value::Ref(_) => Err(VmError::TypeMismatch {
                method: m,
                pc,
                what: "expected int",
            }),
        }
    }

    fn require_obj(&self, v: Value, m: MethodId, pc: usize) -> Result<ObjId, VmError> {
        self.check_null(v, m, pc)
    }

    fn check_null(&self, v: Value, m: MethodId, pc: usize) -> Result<ObjId, VmError> {
        match v {
            Value::Ref(Some(o)) => Ok(o),
            Value::Ref(None) => Err(VmError::Trap {
                trap: Trap::NullPointer,
                method: m,
                pc,
            }),
            Value::Int(_) => Err(VmError::TypeMismatch {
                method: m,
                pc,
                what: "expected ref",
            }),
        }
    }

    fn check_array(
        &self,
        arr: Value,
        idx: Value,
        m: MethodId,
        pc: usize,
    ) -> Result<(ObjId, u32), VmError> {
        let o = self.check_null(arr, m, pc)?;
        let i = self.require_int(idx, m, pc)?;
        let len = self.heap.array_len(o).ok_or(VmError::TypeMismatch {
            method: m,
            pc,
            what: "array op on non-array",
        })?;
        if i < 0 || i as usize >= len {
            return Err(VmError::Trap {
                trap: Trap::OutOfBounds,
                method: m,
                pc,
            });
        }
        Ok((o, i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::bytecode::{BinOp, CmpOp};

    fn run_main(pb: ProgramBuilder, entry: MethodId) -> (Option<Value>, Interp<'static>) {
        // Leak for test convenience: tests run once per process.
        let p: &'static Program = Box::leak(Box::new(pb.finish(entry)));
        let mut i = Interp::new(p).with_profiling();
        i.set_fuel(10_000_000);
        let r = i.run(&[]).expect("run failed");
        (r, i)
    }

    #[test]
    fn loop_sums() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let sum = m.imm(0);
        let i = m.imm(0);
        let n = m.imm(100);
        let one = m.imm(1);
        let head = m.new_label();
        let exit = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        m.bin(BinOp::Add, sum, sum, i);
        m.bin(BinOp::Add, i, i, one);
        m.safepoint();
        m.jump(head);
        m.bind(exit);
        m.ret(Some(sum));
        let entry = m.finish(&mut pb);
        let (r, interp) = run_main(pb, entry);
        assert_eq!(r, Some(Value::Int(4950)));
        // Branch profile: taken once (exit), not-taken 100 times.
        let prof = interp.profile.method(entry).unwrap();
        let (t, nt) = prof.branches[&4];
        assert_eq!((t, nt), (1, 100));
    }

    #[test]
    fn recursion_factorial() {
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare("fact", 1);
        let mut f = pb.method("fact", 1);
        let base = f.new_label();
        let one = f.imm(1);
        f.branch(CmpOp::Le, f.arg(0), one, base);
        let n1 = f.reg();
        f.bin(BinOp::Sub, n1, f.arg(0), one);
        let rec = f.reg();
        f.call(Some(rec), fid, &[n1]);
        let out = f.reg();
        f.bin(BinOp::Mul, out, f.arg(0), rec);
        f.ret(Some(out));
        f.bind(base);
        f.ret(Some(one));
        f.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let ten = m.imm(10);
        let r = m.reg();
        m.call(Some(r), fid, &[ten]);
        m.ret(Some(r));
        let entry = m.finish(&mut pb);
        let (r, _) = run_main(pb, entry);
        assert_eq!(r, Some(Value::Int(3_628_800)));
    }

    #[test]
    fn virtual_dispatch_and_receiver_profile() {
        let mut pb = ProgramBuilder::new();
        let get_a = pb.declare("A.get", 1);
        let get_b = pb.declare("B.get", 1);
        let a = pb.add_class("A", None, &[]);
        let slot = pb.add_slot(a, get_a);
        let b = pb.add_class("B", Some(a), &[]);
        pb.override_slot(b, slot, get_b);
        for (name, v) in [("A.get", 10i64), ("B.get", 20)] {
            let mut m = pb.method(name, 1);
            let r = m.imm(v);
            m.ret(Some(r));
            m.finish(&mut pb);
        }
        let mut m = pb.method("main", 0);
        let oa = m.reg();
        m.new_obj(oa, a);
        let ob = m.reg();
        m.new_obj(ob, b);
        let ra = m.reg();
        m.call_virtual(Some(ra), slot, oa, &[]);
        let rb = m.reg();
        m.call_virtual(Some(rb), slot, ob, &[]);
        let out = m.reg();
        m.bin(BinOp::Add, out, ra, rb);
        m.ret(Some(out));
        let entry = m.finish(&mut pb);
        let (r, interp) = run_main(pb, entry);
        assert_eq!(r, Some(Value::Int(30)));
        let prof = interp.profile.method(entry).unwrap();
        // Two virtual sites (pc 2 and 3), each monomorphic.
        assert_eq!(prof.monomorphic_receiver(2), Some(a));
        assert_eq!(prof.monomorphic_receiver(3), Some(b));
    }

    #[test]
    fn null_pointer_traps() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, &["f"]);
        let fld = pb.field(c, "f");
        let mut m = pb.method("main", 0);
        let o = m.reg();
        m.const_null(o);
        let d = m.reg();
        m.get_field(d, o, fld);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut i = Interp::new(&p);
        let err = i.run(&[]).unwrap_err();
        assert!(matches!(
            err,
            VmError::Trap {
                trap: Trap::NullPointer,
                ..
            }
        ));
    }

    #[test]
    fn bounds_trap() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let len = m.imm(3);
        let a = m.reg();
        m.new_array(a, len);
        let idx = m.imm(3);
        let d = m.reg();
        m.aload(d, a, idx);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut i = Interp::new(&p);
        let err = i.run(&[]).unwrap_err();
        assert!(matches!(
            err,
            VmError::Trap {
                trap: Trap::OutOfBounds,
                ..
            }
        ));
    }

    #[test]
    fn synchronized_method_balances_monitor() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None, &["v"]);
        let fld = pb.field(c, "v");
        let mut s = pb.method("C.bump", 1);
        s.set_synchronized();
        let v = s.reg();
        s.get_field(v, s.arg(0), fld);
        let one = s.imm(1);
        s.bin(BinOp::Add, v, v, one);
        s.put_field(s.arg(0), fld, v);
        s.ret(None);
        let bump = s.finish(&mut pb);

        let mut m = pb.method("main", 0);
        let o = m.reg();
        m.new_obj(o, c);
        m.call(None, bump, &[o]);
        m.call(None, bump, &[o]);
        let out = m.reg();
        m.get_field(out, o, fld);
        m.ret(Some(out));
        let entry = m.finish(&mut pb);
        let (r, interp) = run_main(pb, entry);
        assert_eq!(r, Some(Value::Int(2)));
        // Monitor fully released.
        assert_eq!(interp.heap.lock_word(ObjId(0)), 0);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let head = m.new_label();
        m.bind(head);
        m.safepoint();
        m.jump(head);
        let entry = m.finish(&mut pb);
        let p = pb.finish(entry);
        let mut i = Interp::new(&p);
        i.set_fuel(1000);
        assert_eq!(i.run(&[]).unwrap_err(), VmError::FuelExhausted);
    }

    #[test]
    fn switch_dispatch_and_profile() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("main", 0);
        let acc = m.imm(0);
        let i = m.imm(0);
        let n = m.imm(9);
        let one = m.imm(1);
        let three = m.imm(3);
        let head = m.new_label();
        let exit = m.new_label();
        let c0 = m.new_label();
        let c1 = m.new_label();
        let c2 = m.new_label();
        let join = m.new_label();
        m.bind(head);
        m.branch(CmpOp::Ge, i, n, exit);
        let sel = m.reg();
        m.bin(BinOp::Rem, sel, i, three);
        m.switch(sel, &[c0, c1], c2);
        m.bind(c0);
        m.bin(BinOp::Add, acc, acc, one);
        m.jump(join);
        m.bind(c1);
        m.bin(BinOp::Add, acc, acc, three);
        m.jump(join);
        m.bind(c2);
        m.bin(BinOp::Add, acc, acc, n);
        m.jump(join);
        m.bind(join);
        m.bin(BinOp::Add, i, i, one);
        m.jump(head);
        m.bind(exit);
        m.ret(Some(acc));
        let entry = m.finish(&mut pb);
        let (r, interp) = run_main(pb, entry);
        assert_eq!(r, Some(Value::Int(3 * (1 + 3 + 9))));
        let prof = interp.profile.method(entry).unwrap();
        let counts = prof.switches.values().next().unwrap();
        assert_eq!(counts, &vec![3, 3, 3]);
    }
}
