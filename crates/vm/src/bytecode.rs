//! The register-based, Java-like bytecode the VM executes and the JIT
//! compiles.
//!
//! The instruction set deliberately mirrors the *shape* of JVM code after a
//! first translation out of the stack machine: virtual registers, explicit
//! control flow, object field and array accesses with implicit null/bounds
//! checks, virtual dispatch through vtable slots, per-object monitors, and GC
//! safepoints on loop back-edges. These are exactly the features the paper's
//! optimizations feed on (§2).

use std::fmt;

/// A virtual register within a method frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a class in the [`Program`](crate::class::Program)'s class table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Identifies a method in the program's method table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// A field index within an object layout (fields of superclasses first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u16);

/// A virtual-dispatch slot index within a class vtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u16);

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; traps on a zero divisor.
    Div,
    /// Remainder; traps on a zero divisor.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Arithmetic shift right (modulo 64).
    Shr,
}

impl BinOp {
    /// Evaluates the operation, returning `None` on division by zero.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        })
    }

    /// True if the op can trap (division/remainder by zero).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Comparison predicates used by conditional branches.
///
/// `Eq`/`Ne` also compare references (for null tests the builder compares
/// against a register holding the null constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// The predicate with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the predicate.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the predicate on integers.
    pub fn eval_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Host-provided intrinsics, used by workloads for observable output and
/// deterministic input generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Folds the argument into the global checksum accumulator
    /// (`cs = cs * 31 + v`); the checksum is the observable result used by
    /// the functional-equivalence tests.
    Checksum,
    /// Writes the next value of a seeded 64-bit LCG into `dst`.
    NextRandom,
    /// Thread-yield flag load (the JVM's GC polling read). Returns 0.
    YieldFlag,
}

/// One bytecode instruction.
///
/// Branch targets are indices into the method's instruction vector; the
/// [`MethodBuilder`](crate::builder::MethodBuilder) patches labels into
/// absolute indices.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields (dst/src/obj/...) are self-describing
pub enum Instr {
    /// `dst = value`
    Const { dst: Reg, value: i64 },
    /// `dst = null`
    ConstNull { dst: Reg },
    /// `dst = src`
    Move { dst: Reg, src: Reg },
    /// `dst = a <op> b`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = (a <op> b) ? 1 : 0`
    Cmp { op: CmpOp, dst: Reg, a: Reg, b: Reg },
    /// `if a <op> b goto target`
    Branch {
        op: CmpOp,
        a: Reg,
        b: Reg,
        target: usize,
    },
    /// `goto target`
    Jump { target: usize },
    /// `goto targets[src]` if `0 <= src < targets.len()`, else `default`.
    /// Models Java's `tableswitch` (an indirect branch to hardware).
    Switch {
        src: Reg,
        targets: Vec<usize>,
        default: usize,
    },
    /// Allocate an instance of `class`; fields are zero/null initialized.
    New { dst: Reg, class: ClassId },
    /// Allocate an array of `len` (register) elements of `Value::Int(0)`.
    NewArray { dst: Reg, len: Reg },
    /// `dst = obj.field` — implicit null check on `obj`.
    GetField { dst: Reg, obj: Reg, field: FieldId },
    /// `obj.field = src` — implicit null check on `obj`.
    PutField { obj: Reg, field: FieldId, src: Reg },
    /// `dst = arr[idx]` — implicit null and bounds checks.
    ALoad { dst: Reg, arr: Reg, idx: Reg },
    /// `arr[idx] = src` — implicit null and bounds checks.
    AStore { arr: Reg, idx: Reg, src: Reg },
    /// `dst = arr.length` — implicit null check.
    ArrayLen { dst: Reg, arr: Reg },
    /// Direct (static / non-virtual) call.
    Call {
        dst: Option<Reg>,
        method: MethodId,
        args: Vec<Reg>,
    },
    /// Virtual call through the receiver's vtable `slot` — implicit null
    /// check on the receiver, which is passed as the callee's first argument.
    CallVirtual {
        dst: Option<Reg>,
        slot: SlotId,
        recv: Reg,
        args: Vec<Reg>,
    },
    /// Return from the method, optionally with a value.
    Return { src: Option<Reg> },
    /// Acquire the object's monitor (reservation-style lock word).
    MonitorEnter { obj: Reg },
    /// Release the object's monitor.
    MonitorExit { obj: Reg },
    /// `dst = (obj instanceof class) ? 1 : 0` (null is not an instance).
    InstanceOf { dst: Reg, obj: Reg, class: ClassId },
    /// Trap with [`Trap::ClassCast`](crate::error::Trap::ClassCast) unless
    /// `obj` is null or an instance of `class`.
    CheckCast { obj: Reg, class: ClassId },
    /// GC safepoint poll (placed on loop back-edges by the builder).
    Safepoint,
    /// Host intrinsic.
    Intrin {
        kind: Intrinsic,
        dst: Option<Reg>,
        args: Vec<Reg>,
    },
    /// Simulation marker (§5 methodology): bounds equal work across compiler
    /// configurations. Has no architectural effect.
    Marker { id: u32 },
}

impl Instr {
    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Const { .. } | Instr::ConstNull { .. } | Instr::New { .. } => vec![],
            Instr::Move { src, .. } => vec![*src],
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } | Instr::Branch { a, b, .. } => {
                vec![*a, *b]
            }
            Instr::Jump { .. } | Instr::Safepoint | Instr::Marker { .. } => vec![],
            Instr::Switch { src, .. } => vec![*src],
            Instr::NewArray { len, .. } => vec![*len],
            Instr::GetField { obj, .. } => vec![*obj],
            Instr::PutField { obj, src, .. } => vec![*obj, *src],
            Instr::ALoad { arr, idx, .. } => vec![*arr, *idx],
            Instr::AStore { arr, idx, src } => vec![*arr, *idx, *src],
            Instr::ArrayLen { arr, .. } => vec![*arr],
            Instr::Call { args, .. } => args.clone(),
            Instr::CallVirtual { recv, args, .. } => {
                let mut v = vec![*recv];
                v.extend_from_slice(args);
                v
            }
            Instr::Return { src } => src.iter().copied().collect(),
            Instr::MonitorEnter { obj } | Instr::MonitorExit { obj } => vec![*obj],
            Instr::InstanceOf { obj, .. } | Instr::CheckCast { obj, .. } => vec![*obj],
            Instr::Intrin { args, .. } => args.clone(),
        }
    }

    /// The register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::ConstNull { dst }
            | Instr::Move { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::New { dst, .. }
            | Instr::NewArray { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::ALoad { dst, .. }
            | Instr::ArrayLen { dst, .. }
            | Instr::InstanceOf { dst, .. } => Some(*dst),
            Instr::Call { dst, .. }
            | Instr::CallVirtual { dst, .. }
            | Instr::Intrin { dst, .. } => *dst,
            _ => None,
        }
    }

    /// True if the instruction unconditionally ends straight-line flow
    /// (jump, switch, or return).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jump { .. } | Instr::Switch { .. } | Instr::Return { .. }
        )
    }

    /// Explicit control-flow successors (branch/jump/switch targets). A
    /// conditional branch's fall-through successor is implicit (`pc + 1`).
    pub fn targets(&self) -> Vec<usize> {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } => vec![*target],
            Instr::Switch {
                targets, default, ..
            } => {
                let mut t = targets.clone();
                t.push(*default);
                t
            }
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Mul.eval(4, 3), Some(12));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(7, 0), None);
        assert_eq!(BinOp::Rem.eval(7, 0), None);
        assert_eq!(BinOp::Shl.eval(1, 65), Some(2), "shift is modulo 64");
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN), "wrapping");
    }

    #[test]
    fn cmp_negate_swap() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(op.eval_int(a, b), !op.negate().eval_int(a, b));
                assert_eq!(op.eval_int(a, b), op.swap().eval_int(b, a));
            }
        }
    }

    #[test]
    fn uses_and_defs() {
        let i = Instr::Bin {
            op: BinOp::Add,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        assert_eq!(i.uses(), vec![Reg(1), Reg(2)]);
        assert_eq!(i.def(), Some(Reg(0)));

        let c = Instr::CallVirtual {
            dst: None,
            slot: SlotId(0),
            recv: Reg(5),
            args: vec![Reg(6)],
        };
        assert_eq!(c.uses(), vec![Reg(5), Reg(6)]);
        assert_eq!(c.def(), None);
    }

    #[test]
    fn switch_targets_include_default() {
        let s = Instr::Switch {
            src: Reg(0),
            targets: vec![3, 4],
            default: 9,
        };
        assert_eq!(s.targets(), vec![3, 4, 9]);
        assert!(s.is_terminator());
        assert!(!Instr::Safepoint.is_terminator());
    }
}
