//! Classes, methods, and the program container.

use std::collections::HashMap;

use crate::bytecode::{ClassId, Instr, MethodId, SlotId};

/// A class: a named field layout plus a vtable for virtual dispatch.
#[derive(Debug, Clone)]
pub struct Class {
    /// Human-readable name (unique within a program).
    pub name: String,
    /// Superclass, if any. Field layouts are prefix-compatible with the
    /// superclass so a subclass instance can be used where the superclass is
    /// expected.
    pub superclass: Option<ClassId>,
    /// Field names; `FieldId(i)` indexes this vector (superclass fields
    /// included, first).
    pub fields: Vec<String>,
    /// Virtual method table; `SlotId(i)` indexes this vector.
    pub vtable: Vec<MethodId>,
}

impl Class {
    /// Number of fields in an instance of this class.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }
}

/// A method: bytecode plus frame metadata.
#[derive(Debug, Clone)]
pub struct Method {
    /// Human-readable name (unique within a program).
    pub name: String,
    /// Number of arguments (passed in `r0..argc-1`).
    pub argc: u16,
    /// Total number of virtual registers used by the body.
    pub regs: u16,
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// True for methods that should never be considered for inlining or
    /// compilation (used to model native/classlib boundaries).
    pub opaque: bool,
    /// True for `synchronized` methods: the interpreter and JIT bracket the
    /// body with monitor enter/exit on the receiver (`r0`).
    pub synchronized: bool,
}

/// A complete program: class table, method table, and an entry method.
#[derive(Debug, Clone)]
pub struct Program {
    classes: Vec<Class>,
    methods: Vec<Method>,
    entry: MethodId,
    method_names: HashMap<String, MethodId>,
    class_names: HashMap<String, ClassId>,
}

impl Program {
    /// Assembles a program from parts. Called by the
    /// [`ProgramBuilder`](crate::builder::ProgramBuilder).
    pub(crate) fn from_parts(classes: Vec<Class>, methods: Vec<Method>, entry: MethodId) -> Self {
        let method_names = methods
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), MethodId(i as u32)))
            .collect();
        let class_names = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), ClassId(i as u32)))
            .collect();
        Program {
            classes,
            methods,
            entry,
            method_names,
            class_names,
        }
    }

    /// The entry method executed by [`Interp::run`](crate::interp::Interp::run).
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Looks up a class by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Looks up a method by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Looks up a method id by name.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.method_names.get(name).copied()
    }

    /// Looks up a class id by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// All method ids in definition order.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> + '_ {
        (0..self.methods.len() as u32).map(MethodId)
    }

    /// All class ids in definition order.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Resolves a virtual slot on a receiver class to a concrete method.
    ///
    /// # Panics
    /// Panics if the class has no such slot (ill-formed program).
    pub fn resolve_virtual(&self, class: ClassId, slot: SlotId) -> MethodId {
        self.class(class).vtable[slot.0 as usize]
    }

    /// True if `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).superclass;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;

    #[test]
    fn subclass_chain() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A", None, &["x"]);
        let b = pb.add_class("B", Some(a), &["y"]);
        let c = pb.add_class("C", Some(b), &[]);
        let mut m = pb.method("main", 0);
        m.ret(None);
        let entry = m.finish(&mut pb);
        let prog = pb.finish(entry);

        assert!(prog.is_subclass(c, a));
        assert!(prog.is_subclass(b, a));
        assert!(prog.is_subclass(a, a));
        assert!(!prog.is_subclass(a, b));
        assert_eq!(prog.class(b).field_count(), 2, "inherits A's field");
        assert_eq!(prog.class_by_name("C"), Some(c));
    }
}
