//! VM error and trap types.

use std::error::Error;
use std::fmt;

use crate::bytecode::MethodId;

/// A runtime trap — the Java-like safety checks that "rarely fail" but whose
/// presence shapes the code (paper §2).
///
/// In this VM a trap on the non-speculative path aborts execution with an
/// error (workloads are written not to trap). Inside an atomic region a trap
/// instead aborts the region and control transfers to the non-speculative
/// version of the code, exactly as the paper's hardware does for exceptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Dereference of a null reference.
    NullPointer,
    /// Array index out of bounds.
    OutOfBounds,
    /// Failed checked cast.
    ClassCast,
    /// Integer division or remainder by zero.
    DivByZero,
    /// `monitorexit` on a monitor the thread does not own.
    IllegalMonitorState,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Trap::NullPointer => "null pointer dereference",
            Trap::OutOfBounds => "array index out of bounds",
            Trap::ClassCast => "checked cast failed",
            Trap::DivByZero => "division by zero",
            Trap::IllegalMonitorState => "illegal monitor state",
        };
        f.write_str(s)
    }
}

/// Errors produced while executing bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A safety check failed at `method`/`pc`.
    Trap {
        /// Trap kind.
        trap: Trap,
        /// Method in which the trap occurred.
        method: MethodId,
        /// Bytecode index of the trapping instruction.
        pc: usize,
    },
    /// The step budget was exhausted (guards tests against runaway loops).
    FuelExhausted,
    /// Wrong value kind for an operation (ill-typed bytecode).
    TypeMismatch {
        /// Method in which the mismatch occurred.
        method: MethodId,
        /// Bytecode index of the offending instruction.
        pc: usize,
        /// Human-readable description.
        what: &'static str,
    },
    /// The call stack exceeded its configured limit.
    StackOverflow,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Trap { trap, method, pc } => {
                write!(f, "{trap} at method {}:{pc}", method.0)
            }
            VmError::FuelExhausted => f.write_str("interpreter fuel exhausted"),
            VmError::TypeMismatch { method, pc, what } => {
                write!(f, "type mismatch ({what}) at method {}:{pc}", method.0)
            }
            VmError::StackOverflow => f.write_str("call stack overflow"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = VmError::Trap {
            trap: Trap::NullPointer,
            method: MethodId(3),
            pc: 7,
        };
        assert!(e.to_string().contains("null pointer"));
        assert!(!VmError::FuelExhausted.to_string().is_empty());
    }
}
