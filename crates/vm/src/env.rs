//! Execution environment shared between the interpreter and compiled code:
//! the observable checksum, the deterministic random source, and simulation
//! markers.

/// Observable side effects of a run.
///
/// Both the profiling interpreter and the hardware simulator thread their
/// side effects through an `Env`, so a workload's result can be compared
/// bit-for-bit across execution engines and compiler configurations — the
/// backbone of the functional-equivalence test suite.
#[derive(Debug, Clone)]
pub struct Env {
    checksum: i64,
    rng: u64,
    marker_hits: Vec<(u32, u64)>,
    /// Per-id running tallies. Marker ids are static program points, so this
    /// stays a handful of entries; keeping it alongside the hit log makes
    /// `marker_count` O(#ids) instead of a scan over every recorded hit
    /// (which turns quadratic on marker-heavy workloads). Derived state:
    /// always reconstructible from `marker_hits`, hence excluded from
    /// equality.
    counts: Vec<(u32, u64)>,
}

impl PartialEq for Env {
    fn eq(&self, other: &Self) -> bool {
        self.checksum == other.checksum
            && self.rng == other.rng
            && self.marker_hits == other.marker_hits
    }
}

impl Eq for Env {}

impl Env {
    /// Creates an environment with the given random seed.
    pub fn new(seed: u64) -> Self {
        // Splitmix64-style scramble so nearby seeds produce unrelated streams.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Env {
            checksum: 0,
            rng: z ^ (z >> 31),
            marker_hits: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Folds a value into the checksum (`cs = cs * 31 + v`, wrapping).
    pub fn checksum_push(&mut self, v: i64) {
        self.checksum = self.checksum.wrapping_mul(31).wrapping_add(v);
    }

    /// The accumulated checksum.
    pub fn checksum(&self) -> i64 {
        self.checksum
    }

    /// Next value of the 64-bit LCG (Knuth MMIX constants).
    pub fn next_random(&mut self) -> i64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 17) as i64
    }

    /// Records a dynamic hit of marker `id`, tagged with the hit ordinal.
    #[inline]
    pub fn hit_marker(&mut self, id: u32) {
        let n = match self.counts.iter_mut().find(|(m, _)| *m == id) {
            Some(entry) => {
                entry.1 += 1;
                entry.1
            }
            None => {
                self.counts.push((id, 1));
                1
            }
        };
        self.marker_hits.push((id, n));
    }

    /// Number of times marker `id` has fired so far.
    #[inline]
    pub fn marker_count(&self, id: u32) -> u64 {
        self.counts
            .iter()
            .find(|(m, _)| *m == id)
            .map_or(0, |&(_, c)| c)
    }

    /// All marker hits in order.
    pub fn marker_hits(&self) -> &[(u32, u64)] {
        &self.marker_hits
    }

    /// Captures the environment state for speculative execution (hardware
    /// checkpoint support: side effects inside an aborted atomic region must
    /// vanish).
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            checksum: self.checksum,
            rng: self.rng,
            markers: self.marker_hits.len(),
        }
    }

    /// Rolls the environment back to a snapshot.
    pub fn restore(&mut self, s: &EnvSnapshot) {
        self.checksum = s.checksum;
        self.rng = s.rng;
        // Un-count each rolled-back hit so the tallies keep mirroring the log.
        while self.marker_hits.len() > s.markers {
            let (id, _) = self.marker_hits.pop().expect("len > markers");
            if let Some(entry) = self.counts.iter_mut().find(|(m, _)| *m == id) {
                entry.1 -= 1;
            }
        }
    }
}

/// A point-in-time capture of an [`Env`], used to roll back the observable
/// side effects of an aborted atomic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvSnapshot {
    checksum: i64,
    rng: u64,
    markers: usize,
}

impl Default for Env {
    fn default() -> Self {
        Env::new(0x5eed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_order_sensitive() {
        let mut a = Env::new(1);
        a.checksum_push(1);
        a.checksum_push(2);
        let mut b = Env::new(1);
        b.checksum_push(2);
        b.checksum_push(1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn rng_deterministic_per_seed() {
        let mut a = Env::new(42);
        let mut b = Env::new(42);
        let seq_a: Vec<i64> = (0..5).map(|_| a.next_random()).collect();
        let seq_b: Vec<i64> = (0..5).map(|_| b.next_random()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = Env::new(43);
        assert_ne!(seq_a[0], c.next_random());
    }

    #[test]
    fn markers_count() {
        let mut e = Env::new(1);
        e.hit_marker(7);
        e.hit_marker(7);
        e.hit_marker(3);
        assert_eq!(e.marker_count(7), 2);
        assert_eq!(e.marker_count(3), 1);
        assert_eq!(e.marker_hits().len(), 3);
    }

    #[test]
    fn restore_rolls_back_marker_tallies() {
        let mut e = Env::new(1);
        e.hit_marker(7);
        let snap = e.snapshot();
        e.hit_marker(7);
        e.hit_marker(3);
        assert_eq!(e.marker_count(7), 2);
        e.restore(&snap);
        assert_eq!(e.marker_count(7), 1);
        assert_eq!(e.marker_count(3), 0);
        // Ordinals resume from the rolled-back tally, exactly as if the
        // aborted hits never happened.
        e.hit_marker(7);
        assert_eq!(e.marker_hits(), &[(7, 1), (7, 2)]);
        // A fully rolled-back id compares equal to one never hit.
        let mut fresh = Env::new(1);
        fresh.hit_marker(7);
        fresh.hit_marker(7);
        assert_eq!(e, fresh);
    }
}
