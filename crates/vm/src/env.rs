//! Execution environment shared between the interpreter and compiled code:
//! the observable checksum, the deterministic random source, and simulation
//! markers.

/// Observable side effects of a run.
///
/// Both the profiling interpreter and the hardware simulator thread their
/// side effects through an `Env`, so a workload's result can be compared
/// bit-for-bit across execution engines and compiler configurations — the
/// backbone of the functional-equivalence test suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    checksum: i64,
    rng: u64,
    marker_hits: Vec<(u32, u64)>,
}

impl Env {
    /// Creates an environment with the given random seed.
    pub fn new(seed: u64) -> Self {
        // Splitmix64-style scramble so nearby seeds produce unrelated streams.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Env {
            checksum: 0,
            rng: z ^ (z >> 31),
            marker_hits: Vec::new(),
        }
    }

    /// Folds a value into the checksum (`cs = cs * 31 + v`, wrapping).
    pub fn checksum_push(&mut self, v: i64) {
        self.checksum = self.checksum.wrapping_mul(31).wrapping_add(v);
    }

    /// The accumulated checksum.
    pub fn checksum(&self) -> i64 {
        self.checksum
    }

    /// Next value of the 64-bit LCG (Knuth MMIX constants).
    pub fn next_random(&mut self) -> i64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rng >> 17) as i64
    }

    /// Records a dynamic hit of marker `id`, tagged with the hit ordinal.
    pub fn hit_marker(&mut self, id: u32) {
        let n = self.marker_count(id);
        self.marker_hits.push((id, n + 1));
    }

    /// Number of times marker `id` has fired so far.
    pub fn marker_count(&self, id: u32) -> u64 {
        self.marker_hits.iter().filter(|(m, _)| *m == id).count() as u64
    }

    /// All marker hits in order.
    pub fn marker_hits(&self) -> &[(u32, u64)] {
        &self.marker_hits
    }

    /// Captures the environment state for speculative execution (hardware
    /// checkpoint support: side effects inside an aborted atomic region must
    /// vanish).
    pub fn snapshot(&self) -> EnvSnapshot {
        EnvSnapshot {
            checksum: self.checksum,
            rng: self.rng,
            markers: self.marker_hits.len(),
        }
    }

    /// Rolls the environment back to a snapshot.
    pub fn restore(&mut self, s: &EnvSnapshot) {
        self.checksum = s.checksum;
        self.rng = s.rng;
        self.marker_hits.truncate(s.markers);
    }
}

/// A point-in-time capture of an [`Env`], used to roll back the observable
/// side effects of an aborted atomic region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvSnapshot {
    checksum: i64,
    rng: u64,
    markers: usize,
}

impl Default for Env {
    fn default() -> Self {
        Env::new(0x5eed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_order_sensitive() {
        let mut a = Env::new(1);
        a.checksum_push(1);
        a.checksum_push(2);
        let mut b = Env::new(1);
        b.checksum_push(2);
        b.checksum_push(1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn rng_deterministic_per_seed() {
        let mut a = Env::new(42);
        let mut b = Env::new(42);
        let seq_a: Vec<i64> = (0..5).map(|_| a.next_random()).collect();
        let seq_b: Vec<i64> = (0..5).map(|_| b.next_random()).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = Env::new(43);
        assert_ne!(seq_a[0], c.next_random());
    }

    #[test]
    fn markers_count() {
        let mut e = Env::new(1);
        e.hit_marker(7);
        e.hit_marker(7);
        e.hit_marker(3);
        assert_eq!(e.marker_count(7), 2);
        assert_eq!(e.marker_count(3), 1);
        assert_eq!(e.marker_hits().len(), 3);
    }
}
