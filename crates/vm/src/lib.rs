//! # hasp-vm — the managed-runtime substrate
//!
//! A Java-like virtual machine built from scratch as the substrate for
//! reproducing *Hardware Atomicity for Reliable Software Speculation*
//! (Neelakantam et al., ISCA 2007). The paper's evaluation lives inside
//! Apache Harmony DRLVM; this crate provides the equivalent raw material the
//! optimizations feed on:
//!
//! * a register-based bytecode with Java's *shape* — frequent biased
//!   branches, implicit null/bounds/type checks, virtual dispatch through
//!   vtables, per-object monitors, GC safepoints ([`bytecode`]),
//! * an object heap with simulated byte addresses so the hardware crate can
//!   run a real cache model over its traffic ([`heap`]),
//! * a profiling interpreter collecting branch bias, switch case counts,
//!   receiver histograms and invocation counts ([`interp`], [`profile`]),
//! * builders for writing workloads in Rust ([`builder`]).
//!
//! ## Example
//!
//! ```
//! use hasp_vm::builder::ProgramBuilder;
//! use hasp_vm::bytecode::{BinOp, CmpOp};
//! use hasp_vm::interp::Interp;
//! use hasp_vm::value::Value;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut m = pb.method("main", 0);
//! let (sum, i, n, one) = (m.imm(0), m.imm(0), m.imm(10), m.imm(1));
//! let head = m.new_label();
//! let exit = m.new_label();
//! m.bind(head);
//! m.branch(CmpOp::Ge, i, n, exit);
//! m.bin(BinOp::Add, sum, sum, i);
//! m.bin(BinOp::Add, i, i, one);
//! m.jump(head);
//! m.bind(exit);
//! m.ret(Some(sum));
//! let entry = m.finish(&mut pb);
//! let program = pb.finish(entry);
//!
//! let mut interp = Interp::new(&program);
//! assert_eq!(interp.run(&[]).unwrap(), Some(Value::Int(45)));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod bytecode;
pub mod class;
pub mod env;
pub mod error;
pub mod heap;
pub mod interp;
pub mod profile;
pub mod value;

pub use builder::{MethodBuilder, ProgramBuilder};
pub use bytecode::{BinOp, ClassId, CmpOp, FieldId, Instr, Intrinsic, MethodId, Reg, SlotId};
pub use class::{Class, Method, Program};
pub use env::{Env, EnvSnapshot};
pub use error::{Trap, VmError};
pub use heap::{Heap, HeapCell, HeapMark};
pub use interp::Interp;
pub use profile::{MethodProfile, Profile};
pub use value::{ObjId, Value};
