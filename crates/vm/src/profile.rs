//! Edge, call-site, and invocation profiles collected by the first-pass
//! interpreter (paper §4: "region formation is fundamentally profile-driven").

use std::collections::HashMap;

use crate::bytecode::{ClassId, MethodId};

/// Profile counters for one method, indexed by bytecode pc.
#[derive(Debug, Clone, Default)]
pub struct MethodProfile {
    /// Times the method was invoked.
    pub invocations: u64,
    /// For each conditional branch pc: (taken, not-taken) counts.
    pub branches: HashMap<usize, (u64, u64)>,
    /// For each switch pc: per-case counts (`targets.len()` entries) plus the
    /// default count in the last slot.
    pub switches: HashMap<usize, Vec<u64>>,
    /// For each virtual-call pc: receiver class histogram.
    pub receivers: HashMap<usize, HashMap<ClassId, u64>>,
    /// Times each instruction pc was executed (block counts are derived from
    /// the counts of block-leader pcs).
    pub exec: HashMap<usize, u64>,
}

impl MethodProfile {
    /// Taken-bias of the branch at `pc` in [0, 1]; `None` if never executed.
    pub fn branch_bias(&self, pc: usize) -> Option<f64> {
        let (t, n) = *self.branches.get(&pc)?;
        let total = t + n;
        if total == 0 {
            None
        } else {
            Some(t as f64 / total as f64)
        }
    }

    /// Execution count of the instruction at `pc`.
    pub fn exec_count(&self, pc: usize) -> u64 {
        self.exec.get(&pc).copied().unwrap_or(0)
    }

    /// The single receiver class observed at a virtual call site, if the site
    /// is monomorphic (exactly one class observed).
    pub fn monomorphic_receiver(&self, pc: usize) -> Option<ClassId> {
        let h = self.receivers.get(&pc)?;
        if h.len() == 1 {
            h.keys().next().copied()
        } else {
            None
        }
    }

    /// The dominant receiver class and its frequency share, if any.
    pub fn dominant_receiver(&self, pc: usize) -> Option<(ClassId, f64)> {
        let h = self.receivers.get(&pc)?;
        let total: u64 = h.values().sum();
        let (&c, &n) = h.iter().max_by_key(|(_, &n)| n)?;
        if total == 0 {
            None
        } else {
            Some((c, n as f64 / total as f64))
        }
    }
}

/// Whole-program profile: one [`MethodProfile`] per method.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    methods: HashMap<MethodId, MethodProfile>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile for `m`, if the method ever ran.
    pub fn method(&self, m: MethodId) -> Option<&MethodProfile> {
        self.methods.get(&m)
    }

    /// Mutable accessor, creating an empty per-method profile on first use.
    pub fn method_mut(&mut self, m: MethodId) -> &mut MethodProfile {
        self.methods.entry(m).or_default()
    }

    /// Methods sorted by invocation count, hottest first.
    pub fn hottest_methods(&self) -> Vec<(MethodId, u64)> {
        let mut v: Vec<_> = self
            .methods
            .iter()
            .map(|(m, p)| (*m, p.invocations))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Clears all counters (used between profiling phases).
    pub fn reset(&mut self) {
        self.methods.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_bias() {
        let mut p = MethodProfile::default();
        p.branches.insert(4, (99, 1));
        assert_eq!(p.branch_bias(4), Some(0.99));
        assert_eq!(p.branch_bias(5), None);
    }

    #[test]
    fn receiver_classification() {
        let mut p = MethodProfile::default();
        let h = p.receivers.entry(10).or_default();
        h.insert(ClassId(1), 80);
        h.insert(ClassId(2), 20);
        assert_eq!(p.monomorphic_receiver(10), None);
        assert_eq!(p.dominant_receiver(10), Some((ClassId(1), 0.8)));

        let mut q = MethodProfile::default();
        q.receivers.entry(10).or_default().insert(ClassId(3), 5);
        assert_eq!(q.monomorphic_receiver(10), Some(ClassId(3)));
    }

    #[test]
    fn hottest_sorted() {
        let mut p = Profile::new();
        p.method_mut(MethodId(0)).invocations = 5;
        p.method_mut(MethodId(1)).invocations = 50;
        assert_eq!(p.hottest_methods()[0].0, MethodId(1));
    }
}
