//! Builders for assembling programs in Rust code.
//!
//! The workload crate writes its "Java" in this DSL. Labels are resolved at
//! [`MethodBuilder::finish`]; methods can be forward-declared for recursion
//! and vtables.

use crate::bytecode::{BinOp, ClassId, CmpOp, FieldId, Instr, Intrinsic, MethodId, Reg, SlotId};
use crate::class::{Class, Method, Program};

/// An unresolved branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds a [`Program`]: classes, vtables, and methods.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Option<Method>>,
    names: Vec<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class. `own_fields` are appended after the superclass's fields
    /// so layouts stay prefix-compatible; the vtable starts as a copy of the
    /// superclass's (override with [`ProgramBuilder::set_vtable`] /
    /// [`ProgramBuilder::override_slot`]).
    pub fn add_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        own_fields: &[&str],
    ) -> ClassId {
        let (mut fields, vtable) = match superclass {
            Some(s) => {
                let sc = &self.classes[s.0 as usize];
                (sc.fields.clone(), sc.vtable.clone())
            }
            None => (Vec::new(), Vec::new()),
        };
        fields.extend(own_fields.iter().map(|s| s.to_string()));
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: name.to_string(),
            superclass,
            fields,
            vtable,
        });
        id
    }

    /// Field id of `name` in `class`.
    ///
    /// # Panics
    /// Panics if the class has no field of that name.
    pub fn field(&self, class: ClassId, name: &str) -> FieldId {
        let c = &self.classes[class.0 as usize];
        let i = c
            .fields
            .iter()
            .position(|f| f == name)
            .unwrap_or_else(|| panic!("class {} has no field {name}", c.name));
        FieldId(i as u16)
    }

    /// Replaces the entire vtable of `class`.
    pub fn set_vtable(&mut self, class: ClassId, methods: &[MethodId]) {
        self.classes[class.0 as usize].vtable = methods.to_vec();
    }

    /// Appends a new virtual slot to `class`'s vtable, returning its id.
    pub fn add_slot(&mut self, class: ClassId, method: MethodId) -> SlotId {
        let vt = &mut self.classes[class.0 as usize].vtable;
        vt.push(method);
        SlotId((vt.len() - 1) as u16)
    }

    /// Overrides an existing slot in `class`'s vtable.
    ///
    /// # Panics
    /// Panics if the slot does not exist (inherit or add it first).
    pub fn override_slot(&mut self, class: ClassId, slot: SlotId, method: MethodId) {
        self.classes[class.0 as usize].vtable[slot.0 as usize] = method;
    }

    /// Forward-declares a method so its id can be referenced before its body
    /// is defined.
    pub fn declare(&mut self, name: &str, argc: u16) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(None);
        self.names.push(name.to_string());
        // Reserve with a stub carrying the signature; finish() replaces it.
        self.methods[id.0 as usize] = Some(Method {
            name: name.to_string(),
            argc,
            regs: argc,
            code: Vec::new(),
            opaque: false,
            synchronized: false,
        });
        id
    }

    /// Starts building a method body. If `name` was previously
    /// [`declared`](ProgramBuilder::declare), the body fills that slot;
    /// otherwise a fresh id is allocated.
    pub fn method(&mut self, name: &str, argc: u16) -> MethodBuilder {
        let id = match self.names.iter().position(|n| n == name) {
            Some(i) => MethodId(i as u32),
            None => self.declare(name, argc),
        };
        MethodBuilder {
            id,
            name: name.to_string(),
            argc,
            next_reg: argc,
            code: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            opaque: false,
            synchronized: false,
        }
    }

    /// Id of a previously declared/defined method.
    ///
    /// # Panics
    /// Panics if no method has that name.
    pub fn method_id(&self, name: &str) -> MethodId {
        let i = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no method named {name}"));
        MethodId(i as u32)
    }

    fn install(&mut self, id: MethodId, m: Method) {
        self.methods[id.0 as usize] = Some(m);
    }

    /// Finalizes the program with `entry` as the main method.
    ///
    /// # Panics
    /// Panics if any declared method was never defined.
    pub fn finish(self, entry: MethodId) -> Program {
        let methods: Vec<Method> = self
            .methods
            .into_iter()
            .zip(&self.names)
            .map(|(m, n)| m.unwrap_or_else(|| panic!("method {n} declared but not defined")))
            .collect();
        for (i, m) in methods.iter().enumerate() {
            assert!(
                !m.code.is_empty() || m.opaque,
                "method {} (id {i}) has an empty body",
                m.name
            );
        }
        Program::from_parts(self.classes, methods, entry)
    }
}

/// Builds a single method's bytecode.
#[derive(Debug)]
pub struct MethodBuilder {
    id: MethodId,
    name: String,
    argc: u16,
    next_reg: u16,
    code: Vec<Instr>,
    labels: Vec<Option<usize>>,
    /// (instruction index, operand slot, label) needing patching.
    patches: Vec<(usize, usize, Label)>,
    opaque: bool,
    synchronized: bool,
}

impl MethodBuilder {
    /// The method id this builder defines.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// The `i`-th argument register.
    pub fn arg(&self, i: u16) -> Reg {
        assert!(
            i < self.argc,
            "method {} has only {} args",
            self.name,
            self.argc
        );
        Reg(i)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label((self.labels.len() - 1) as u32)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice in {}", self.name);
        *slot = Some(self.code.len());
    }

    /// Marks the method opaque (never inlined or compiled; models classlib
    /// native methods).
    pub fn set_opaque(&mut self) {
        self.opaque = true;
    }

    /// Marks the method `synchronized` (body bracketed by monitor ops on
    /// `r0`).
    pub fn set_synchronized(&mut self) {
        assert!(self.argc >= 1, "synchronized method needs a receiver");
        self.synchronized = true;
    }

    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    /// `dst = value`
    pub fn const_(&mut self, dst: Reg, value: i64) {
        self.emit(Instr::Const { dst, value });
    }

    /// Fresh register holding `value`.
    pub fn imm(&mut self, value: i64) -> Reg {
        let r = self.reg();
        self.const_(r, value);
        r
    }

    /// `dst = null`
    pub fn const_null(&mut self, dst: Reg) {
        self.emit(Instr::ConstNull { dst });
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Instr::Move { dst, src });
    }

    /// `dst = a <op> b`
    pub fn bin(&mut self, op: BinOp, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::Bin { op, dst, a, b });
    }

    /// `dst = (a <op> b) ? 1 : 0`
    pub fn cmp(&mut self, op: CmpOp, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::Cmp { op, dst, a, b });
    }

    /// `if a <op> b goto target`
    pub fn branch(&mut self, op: CmpOp, a: Reg, b: Reg, target: Label) {
        let idx = self.code.len();
        self.emit(Instr::Branch {
            op,
            a,
            b,
            target: usize::MAX,
        });
        self.patches.push((idx, 0, target));
    }

    /// `goto target`
    pub fn jump(&mut self, target: Label) {
        let idx = self.code.len();
        self.emit(Instr::Jump { target: usize::MAX });
        self.patches.push((idx, 0, target));
    }

    /// `goto cases[src]`, else `default`.
    pub fn switch(&mut self, src: Reg, cases: &[Label], default: Label) {
        let idx = self.code.len();
        self.emit(Instr::Switch {
            src,
            targets: vec![usize::MAX; cases.len()],
            default: usize::MAX,
        });
        for (slot, l) in cases.iter().enumerate() {
            self.patches.push((idx, slot, *l));
        }
        self.patches.push((idx, cases.len(), default));
    }

    /// Allocates an instance of `class` into `dst`.
    pub fn new_obj(&mut self, dst: Reg, class: ClassId) {
        self.emit(Instr::New { dst, class });
    }

    /// Allocates an array of `len` elements into `dst`.
    pub fn new_array(&mut self, dst: Reg, len: Reg) {
        self.emit(Instr::NewArray { dst, len });
    }

    /// `dst = obj.field`
    pub fn get_field(&mut self, dst: Reg, obj: Reg, field: FieldId) {
        self.emit(Instr::GetField { dst, obj, field });
    }

    /// `obj.field = src`
    pub fn put_field(&mut self, obj: Reg, field: FieldId, src: Reg) {
        self.emit(Instr::PutField { obj, field, src });
    }

    /// `dst = arr[idx]`
    pub fn aload(&mut self, dst: Reg, arr: Reg, idx: Reg) {
        self.emit(Instr::ALoad { dst, arr, idx });
    }

    /// `arr[idx] = src`
    pub fn astore(&mut self, arr: Reg, idx: Reg, src: Reg) {
        self.emit(Instr::AStore { arr, idx, src });
    }

    /// `dst = arr.length`
    pub fn array_len(&mut self, dst: Reg, arr: Reg) {
        self.emit(Instr::ArrayLen { dst, arr });
    }

    /// Direct call.
    pub fn call(&mut self, dst: Option<Reg>, method: MethodId, args: &[Reg]) {
        self.emit(Instr::Call {
            dst,
            method,
            args: args.to_vec(),
        });
    }

    /// Virtual call through `slot` on `recv`.
    pub fn call_virtual(&mut self, dst: Option<Reg>, slot: SlotId, recv: Reg, args: &[Reg]) {
        self.emit(Instr::CallVirtual {
            dst,
            slot,
            recv,
            args: args.to_vec(),
        });
    }

    /// Return, optionally with a value.
    pub fn ret(&mut self, src: Option<Reg>) {
        self.emit(Instr::Return { src });
    }

    /// Monitor enter on `obj`.
    pub fn monitor_enter(&mut self, obj: Reg) {
        self.emit(Instr::MonitorEnter { obj });
    }

    /// Monitor exit on `obj`.
    pub fn monitor_exit(&mut self, obj: Reg) {
        self.emit(Instr::MonitorExit { obj });
    }

    /// `dst = obj instanceof class`
    pub fn instance_of(&mut self, dst: Reg, obj: Reg, class: ClassId) {
        self.emit(Instr::InstanceOf { dst, obj, class });
    }

    /// Checked cast of `obj` to `class`.
    pub fn check_cast(&mut self, obj: Reg, class: ClassId) {
        self.emit(Instr::CheckCast { obj, class });
    }

    /// GC safepoint poll.
    pub fn safepoint(&mut self) {
        self.emit(Instr::Safepoint);
    }

    /// Host intrinsic.
    pub fn intrin(&mut self, kind: Intrinsic, dst: Option<Reg>, args: &[Reg]) {
        self.emit(Instr::Intrin {
            kind,
            dst,
            args: args.to_vec(),
        });
    }

    /// Pushes `src` into the observable checksum.
    pub fn checksum(&mut self, src: Reg) {
        self.intrin(Intrinsic::Checksum, None, &[src]);
    }

    /// Simulation marker.
    pub fn marker(&mut self, id: u32) {
        self.emit(Instr::Marker { id });
    }

    /// Resolves labels and installs the method into the builder.
    ///
    /// # Panics
    /// Panics on unbound labels or a body that can fall off the end.
    pub fn finish(mut self, pb: &mut ProgramBuilder) -> MethodId {
        for (idx, slot, label) in std::mem::take(&mut self.patches) {
            let target = self.labels[label.0 as usize]
                .unwrap_or_else(|| panic!("unbound label in {}", self.name));
            match &mut self.code[idx] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                Instr::Switch {
                    targets, default, ..
                } => {
                    if slot < targets.len() {
                        targets[slot] = target;
                    } else {
                        *default = target;
                    }
                }
                other => panic!("patch on non-branch {other:?}"),
            }
        }
        assert!(
            matches!(
                self.code.last(),
                Some(Instr::Return { .. }) | Some(Instr::Jump { .. }) | Some(Instr::Switch { .. })
            ),
            "method {} can fall off the end",
            self.name
        );
        let id = self.id;
        pb.install(
            id,
            Method {
                name: self.name,
                argc: self.argc,
                regs: self.next_reg,
                code: self.code,
                opaque: self.opaque,
                synchronized: self.synchronized,
            },
        );
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_patched() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("f", 1);
        let done = m.new_label();
        let zero = m.imm(0);
        m.branch(CmpOp::Eq, m.arg(0), zero, done);
        let one = m.imm(1);
        m.ret(Some(one));
        m.bind(done);
        m.ret(Some(zero));
        let id = m.finish(&mut pb);
        let p = pb.finish(id);
        let code = &p.method(id).code;
        match &code[1] {
            Instr::Branch { target, .. } => assert_eq!(*target, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "fall off the end")]
    fn falls_off_end() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.method("bad", 0);
        let r = m.reg();
        m.const_(r, 1);
        let _ = m.finish(&mut pb);
    }

    #[test]
    fn forward_declaration_for_recursion() {
        let mut pb = ProgramBuilder::new();
        let fid = pb.declare("fact", 1);
        let mut m = pb.method("fact", 1);
        let base = m.new_label();
        let one = m.imm(1);
        m.branch(CmpOp::Le, m.arg(0), one, base);
        let n1 = m.reg();
        m.bin(BinOp::Sub, n1, m.arg(0), one);
        let rec = m.reg();
        m.call(Some(rec), fid, &[n1]);
        let out = m.reg();
        m.bin(BinOp::Mul, out, m.arg(0), rec);
        m.ret(Some(out));
        m.bind(base);
        m.ret(Some(one));
        let got = m.finish(&mut pb);
        assert_eq!(got, fid);
        let p = pb.finish(fid);
        assert_eq!(p.method(fid).name, "fact");
    }

    #[test]
    fn vtable_inheritance_and_override() {
        let mut pb = ProgramBuilder::new();
        let base_m = pb.declare("Base.get", 1);
        let sub_m = pb.declare("Sub.get", 1);
        let base = pb.add_class("Base", None, &["v"]);
        let slot = pb.add_slot(base, base_m);
        let sub = pb.add_class("Sub", Some(base), &[]);
        pb.override_slot(sub, slot, sub_m);

        for (name, id) in [("Base.get", base_m), ("Sub.get", sub_m)] {
            let mut m = pb.method(name, 1);
            m.ret(Some(m.arg(0)));
            assert_eq!(m.finish(&mut pb), id);
        }
        let mut main = pb.method("main", 0);
        main.ret(None);
        let entry = main.finish(&mut pb);
        let p = pb.finish(entry);
        assert_eq!(p.resolve_virtual(base, slot), base_m);
        assert_eq!(p.resolve_virtual(sub, slot), sub_m);
    }
}
