//! Runtime values and object identities.

use std::fmt;

/// Identity of a heap object.
///
/// `ObjId` is an index into the [`Heap`](crate::heap::Heap)'s object table. It
/// is stable for the lifetime of the heap (there is no moving collector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A runtime value: either a 64-bit integer or a (possibly null) reference.
///
/// The VM is deliberately Java-like: references are distinct from integers so
/// that null checks and type checks are meaningful, but there is a single
/// integer type to keep the bytecode small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A reference; `None` is Java's `null`.
    Ref(Option<ObjId>),
}

impl Value {
    /// The null reference.
    pub const NULL: Value = Value::Ref(None);

    /// Returns the integer payload.
    ///
    /// # Panics
    /// Panics if the value is a reference. The bytecode verifier and the
    /// interpreter's trap machinery ensure well-typed programs never hit this.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Ref(r) => panic!("expected int, found reference {r:?}"),
        }
    }

    /// Returns the reference payload (which may be null).
    ///
    /// # Panics
    /// Panics if the value is an integer.
    pub fn as_ref_val(self) -> Option<ObjId> {
        match self {
            Value::Ref(r) => r,
            Value::Int(v) => panic!("expected reference, found int {v}"),
        }
    }

    /// True if the value is a reference (null or not).
    pub fn is_ref(self) -> bool {
        matches!(self, Value::Ref(_))
    }

    /// A canonical 64-bit encoding used for checksumming and the undo log.
    ///
    /// Integers map to themselves; references map to their object index plus a
    /// tag in the upper bits; null maps to a distinguished constant.
    pub fn encode(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Ref(None) => i64::MIN,
            Value::Ref(Some(ObjId(i))) => i64::MIN + 1 + i64::from(i),
        }
    }

    /// Inverse of [`Value::encode`].
    pub fn decode(bits: i64) -> Value {
        if bits == i64::MIN {
            Value::Ref(None)
        } else if bits < i64::MIN + 1 + i64::from(u32::MAX) && bits > i64::MIN {
            Value::Ref(Some(ObjId((bits - (i64::MIN + 1)) as u32)))
        } else {
            Value::Int(bits)
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ref(None) => write!(f, "null"),
            Value::Ref(Some(o)) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<ObjId> for Value {
    fn from(o: ObjId) -> Self {
        Value::Ref(Some(o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, 12345] {
            assert_eq!(Value::decode(Value::Int(v).encode()), Value::Int(v));
        }
    }

    #[test]
    fn ref_roundtrip() {
        assert_eq!(Value::decode(Value::NULL.encode()), Value::NULL);
        for i in [0u32, 1, 77, u32::MAX - 1] {
            let v = Value::Ref(Some(ObjId(i)));
            assert_eq!(Value::decode(v.encode()), v);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Ref(Some(ObjId(3))).as_ref_val(), Some(ObjId(3)));
        assert!(Value::NULL.is_ref());
        assert!(!Value::Int(0).is_ref());
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_on_ref_panics() {
        Value::NULL.as_int();
    }
}
