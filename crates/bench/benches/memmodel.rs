//! Micro-benchmarks for the cache model's dynamic-access tiers, isolating
//! each rung of the memory fast-path ladder the machine's `mem_access_parts`
//! climbs (DESIGN §12 MRU filter, §16 seal-site way predictor):
//!
//! 1. **absorbed filter hit** — same line back-to-back, current-epoch
//!    speculative bits cover the access: the one-compare tier.
//! 2. **predictor hit** — two lines alternating across two seal sites: the
//!    MRU filter misses every access, the per-site predictor names the way,
//!    one live tag compare validates it.
//! 3. **full scan hit** — the same alternating stream with the predictor
//!    disabled: every access pays the set scan and LRU bump.
//! 4. **install** — a cold streaming sweep: every access misses and pays
//!    victim selection and line install.
//!
//! The ladder only earns its keep if each tier is measurably cheaper than
//! the one below it; these four groups make that ordering a number instead
//! of an argument.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hasp_hw::{CacheSim, HwConfig};

/// Accesses per Criterion iteration — large enough that per-iter setup
/// noise vanishes, small enough for quick samples.
const ACCESSES: u64 = 4096;

/// Two hot line addresses 8 KiB apart: same L1 set, so both stay resident
/// in the 4-way set while neither ever matches the other's MRU memo.
const LINE_A: u64 = 0x1000;
const LINE_B: u64 = 0x3000;

fn small(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("memmodel");
    g.sample_size(20);
    g
}

/// Tier 1: the §12 MRU filter. One speculative line accessed repeatedly
/// inside a region; after the first access arms the memo, every subsequent
/// access is absorbed by a single line compare.
fn absorbed_filter_hit(c: &mut Criterion) {
    let mut sim = CacheSim::new(&HwConfig::baseline());
    sim.access(LINE_A, true, true);
    let mut g = small(c);
    g.bench_function("absorbed_filter_hit", |b| {
        b.iter(|| {
            for _ in 0..ACCESSES {
                black_box(sim.fast_hit(0, black_box(LINE_A), false, true));
            }
        })
    });
    g.finish();
}

/// Tier 2: the §16 way predictor. Two lines alternate across two seal
/// sites, so the MRU filter misses every access while each site's predictor
/// entry keeps naming the resident way — the cost of one predictor load
/// plus one validating tag compare.
fn predictor_hit(c: &mut Criterion) {
    let mut sim = CacheSim::new(&HwConfig::baseline());
    // Train: both lines resident, both sites predicting.
    sim.access_sited(0, LINE_A, false, false);
    sim.access_sited(1, LINE_B, false, false);
    let mut g = small(c);
    g.bench_function("predictor_hit", |b| {
        b.iter(|| {
            for _ in 0..ACCESSES / 2 {
                black_box(sim.fast_hit(0, black_box(LINE_A), false, false));
                black_box(sim.fast_hit(1, black_box(LINE_B), false, false));
            }
        })
    });
    g.finish();
}

/// Tier 3: the full lookup on an L1 hit. The same alternating stream with
/// the predictor disabled — every access falls through `fast_hit` into the
/// monomorphized set scan and its LRU bump.
fn full_scan_hit(c: &mut Criterion) {
    let mut sim = CacheSim::new(&HwConfig::unpredicted());
    sim.access_sited(0, LINE_A, false, false);
    sim.access_sited(1, LINE_B, false, false);
    let discipline =
        |sim: &mut CacheSim, site: u32, addr: u64| match sim.fast_hit(site, addr, false, false) {
            Some(f) => (
                hasp_hw::HitLevel::L1,
                matches!(f, hasp_hw::FastHit::Resident),
            ),
            None => sim.access_sited(site, addr, false, false),
        };
    let mut g = small(c);
    g.bench_function("full_scan_hit", |b| {
        b.iter(|| {
            for _ in 0..ACCESSES / 2 {
                black_box(discipline(&mut sim, 0, black_box(LINE_A)));
                black_box(discipline(&mut sim, 1, black_box(LINE_B)));
            }
        })
    });
    g.finish();
}

/// Tier 4: the miss path. A cold streaming sweep over a footprint far past
/// both cache levels — every access pays victim selection and install (and,
/// steady-state, an L2 or memory miss).
fn install(c: &mut Criterion) {
    let mut sim = CacheSim::new(&HwConfig::baseline());
    let mut g = small(c);
    g.bench_function("install", |b| {
        let mut cursor = 0u64;
        b.iter(|| {
            for _ in 0..ACCESSES {
                // 64 B stride over a 4 MiB ring of 65 536 lines: larger
                // than L2, so the sweep never re-hits a line it installed
                // this lap.
                let addr = (cursor & 0xFFFF) * 64;
                cursor += 1;
                black_box(sim.access(black_box(addr), false, false));
            }
        })
    });
    g.finish();
}

criterion_group!(
    memmodel,
    absorbed_filter_hit,
    predictor_hit,
    full_scan_hit,
    install
);
criterion_main!(memmodel);
