//! Criterion benches regenerating every table and figure of the paper's
//! evaluation. Each bench group first prints the regenerated table (so
//! `cargo bench` reproduces the paper's rows), then measures the underlying
//! simulation so changes to the compiler or machine model are tracked.

use std::sync::{Mutex, OnceLock};

use criterion::{criterion_group, criterion_main, Criterion};

use hasp_experiments::figures;
use hasp_experiments::{compile_workload, execute_compiled, profile_workload, run_workload, Suite};
use hasp_hw::HwConfig;
use hasp_opt::{compile_program, CompilerConfig};
use hasp_workloads::all_workloads;

fn suite() -> &'static Mutex<Suite> {
    static SUITE: OnceLock<Mutex<Suite>> = OnceLock::new();
    SUITE.get_or_init(|| {
        // Fill the whole matrix through the parallel pipeline once; every
        // figure generator below then reads from cache.
        let mut s = Suite::new();
        let cells = s.full_matrix();
        s.run_all(&cells);
        Mutex::new(s)
    })
}

fn small(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g
}

fn bench_fig1(c: &mut Criterion) {
    let mut s = suite().lock().unwrap();
    let (_, table) = figures::fig1(&mut s);
    println!("{table}");
    drop(s);
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").unwrap();
    let profiled = profile_workload(w);
    let mut g = small(c);
    g.bench_function("fig1_jython_compile_atomic_aggr", |b| {
        b.iter(|| {
            compile_program(
                &w.program,
                &profiled.profile,
                &CompilerConfig::atomic_aggressive(),
            )
        })
    });
    g.finish();
}

fn bench_fig23(c: &mut Criterion) {
    let w = hasp_workloads::synthetic::add_element(20_000);
    let profiled = profile_workload(&w);
    let base = run_workload(
        &w,
        &profiled,
        &CompilerConfig::no_atomic(),
        &HwConfig::baseline(),
    );
    let atom = run_workload(
        &w,
        &profiled,
        &CompilerConfig::atomic(),
        &HwConfig::baseline(),
    );
    println!(
        "== Figures 2-3 — addElement ==\n\
         no-atomic: {} uops / {} cycles; atomic regions: {} uops / {} cycles\n\
         (speedup {:+.1}%, uop reduction {:+.1}%)\n",
        base.stats.uops,
        base.stats.cycles,
        atom.stats.uops,
        atom.stats.cycles,
        atom.speedup_vs(&base),
        atom.uop_reduction_vs(&base),
    );
    let compiled = compile_workload(&w, &profiled, &CompilerConfig::atomic());
    let mut g = small(c);
    g.bench_function("fig23_addelement_atomic_run", |b| {
        b.iter(|| execute_compiled(&w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    // Region formation itself (Steps 2-5) on every benchmark entry method.
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "bloat").unwrap();
    let profiled = profile_workload(w);
    println!("== Figure 5 — region formation runs inside the atomic compile below ==\n");
    let mut g = small(c);
    g.bench_function("fig5_region_formation_bloat", |b| {
        b.iter(|| {
            hasp_opt::compile_method(
                &w.program,
                &profiled.profile,
                w.program.entry(),
                &CompilerConfig::atomic(),
            )
        })
    });
    g.finish();
}

fn bench_fig7_fig8(c: &mut Criterion) {
    {
        let mut s = suite().lock().unwrap();
        let (_, t7) = figures::fig7(&mut s);
        println!("{t7}");
        let (_, t8) = figures::fig8(&mut s);
        println!("{t8}");
    }
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "hsqldb").unwrap();
    let profiled = profile_workload(w);
    let mut g = small(c);
    for cfg in CompilerConfig::paper_configs() {
        let compiled = compile_workload(w, &profiled, &cfg);
        g.bench_function(format!("fig7_hsqldb_{}", cfg.name), |b| {
            b.iter(|| execute_compiled(w, &profiled, &compiled, &HwConfig::baseline()))
        });
    }
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    {
        let mut s = suite().lock().unwrap();
        let (_, t) = figures::table3(&mut s);
        println!("{t}");
    }
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "xalan").unwrap();
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    let mut g = small(c);
    g.bench_function("table3_xalan_atomic_aggr", |b| {
        b.iter(|| execute_compiled(w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    {
        let mut s = suite().lock().unwrap();
        let (_, t) = figures::fig9(&mut s);
        println!("{t}");
    }
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "xalan").unwrap();
    let profiled = profile_workload(w);
    // One compile product serves all three hardware configurations — the
    // same sharing `Suite::run_all` exploits across the matrix.
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    let mut g = small(c);
    for hw in [
        HwConfig::baseline(),
        HwConfig::with_begin_overhead(),
        HwConfig::single_inflight(),
    ] {
        g.bench_function(format!("fig9_xalan_{}", hw.name), |b| {
            b.iter(|| execute_compiled(w, &profiled, &compiled, &hw))
        });
    }
    g.finish();
}

fn bench_sec62_sec63(c: &mut Criterion) {
    {
        let mut s = suite().lock().unwrap();
        let (_, t62) = figures::sec62(&mut s);
        println!("{t62}");
        let (_, t63) = figures::sec63(&mut s);
        println!("{t63}");
        println!("{}", figures::table2(&s));
    }
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "bloat").unwrap();
    let profiled = profile_workload(w);
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_aggressive());
    let mut g = small(c);
    for hw in [HwConfig::two_wide(), HwConfig::two_wide_half()] {
        g.bench_function(format!("sec63_bloat_{}", hw.name), |b| {
            b.iter(|| execute_compiled(w, &profiled, &compiled, &hw))
        });
    }
    g.finish();
}

criterion_group!(
    paper,
    bench_fig1,
    bench_fig23,
    bench_fig5,
    bench_fig7_fig8,
    bench_table3,
    bench_fig9,
    bench_sec62_sec63,
);
criterion_main!(paper);
