//! Ablation benches for the design choices DESIGN.md calls out: the region
//! size target `R` / `LOOPPATHTHRESHOLD`, the 1% cold threshold, speculative
//! lock elision, partial inlining policy, §7 post-dominance check
//! elimination, and §7 adaptive recompilation. Each group prints its
//! mini-study, then benchmarks a representative configuration.

use criterion::{criterion_group, criterion_main, Criterion};

use hasp_core::RegionConfig;
use hasp_experiments::adaptive::run_adaptive;
use hasp_experiments::{compile_workload, execute_compiled, profile_workload, run_workload};
use hasp_hw::HwConfig;
use hasp_opt::CompilerConfig;
use hasp_workloads::{all_workloads, synthetic};

fn small(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g
}

/// Sweep the target region size `R` (paper fixes R = LOOPPATHTHRESHOLD =
/// 200 HIR ops).
fn ablation_region_size(c: &mut Criterion) {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "bloat").unwrap();
    let profiled = profile_workload(w);
    let base = run_workload(
        w,
        &profiled,
        &CompilerConfig::no_atomic(),
        &HwConfig::baseline(),
    );
    println!("== ablation: region size target R (bloat) ==");
    for r in [50u64, 100, 200, 400] {
        let mut cfg = CompilerConfig::atomic();
        cfg.region = RegionConfig::default().with_target_size(r);
        let run = run_workload(w, &profiled, &cfg, &HwConfig::baseline());
        println!(
            "  R = {r:>3}: speedup {:+.1}%, avg region {:.0} uops, commits {}",
            run.speedup_vs(&base),
            run.stats.avg_region_size(),
            run.stats.commits
        );
    }
    println!();
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic());
    let mut g = small(c);
    g.bench_function("ablation_region_size_r200", |b| {
        b.iter(|| execute_compiled(w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

/// Sweep the cold-path bias threshold (paper: 1%).
fn ablation_cold_threshold(c: &mut Criterion) {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "bloat").unwrap();
    let profiled = profile_workload(w);
    let base = run_workload(
        w,
        &profiled,
        &CompilerConfig::no_atomic(),
        &HwConfig::baseline(),
    );
    println!("== ablation: cold-path threshold (bloat) ==");
    for t in [0.001, 0.01, 0.05] {
        let mut cfg = CompilerConfig::atomic();
        cfg.region = RegionConfig::default().with_cold_threshold(t);
        let run = run_workload(w, &profiled, &cfg, &HwConfig::baseline());
        println!(
            "  threshold {:>5.1}%: speedup {:+.1}%, abort rate {:.2}%",
            t * 100.0,
            run.speedup_vs(&base),
            run.stats.abort_rate() * 100.0
        );
    }
    println!();
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic());
    let mut g = small(c);
    g.bench_function("ablation_cold_threshold_1pct", |b| {
        b.iter(|| execute_compiled(w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

/// Speculative lock elision on/off (hsqldb is monitor-bound).
fn ablation_sle(c: &mut Criterion) {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "hsqldb").unwrap();
    let profiled = profile_workload(w);
    let base = run_workload(
        w,
        &profiled,
        &CompilerConfig::no_atomic(),
        &HwConfig::baseline(),
    );
    let with = run_workload(
        w,
        &profiled,
        &CompilerConfig::atomic(),
        &HwConfig::baseline(),
    );
    let mut cfg = CompilerConfig::atomic();
    cfg.sle = false;
    cfg.name = "atomic-no-sle";
    let without = run_workload(w, &profiled, &cfg, &HwConfig::baseline());
    println!(
        "== ablation: speculative lock elision (hsqldb) ==\n  with SLE   : {:+.1}%\n  without SLE: {:+.1}%\n",
        with.speedup_vs(&base),
        without.speedup_vs(&base)
    );
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic());
    let mut g = small(c);
    g.bench_function("ablation_sle_on", |b| {
        b.iter(|| execute_compiled(w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

/// Partial-inlining policy: the jython pathology (reject polymorphic
/// callees) vs the forced dominant-receiver override.
fn ablation_partial_inline(c: &mut Criterion) {
    let ws = all_workloads();
    let w = ws.iter().find(|w| w.name == "jython").unwrap();
    let profiled = profile_workload(w);
    let base = run_workload(
        w,
        &profiled,
        &CompilerConfig::no_atomic(),
        &HwConfig::baseline(),
    );
    println!("== ablation: partial-inlining policy (jython) ==");
    for cfg in [
        CompilerConfig::atomic(),
        CompilerConfig::atomic_forced_mono(),
        CompilerConfig::atomic_aggressive(),
    ] {
        let run = run_workload(w, &profiled, &cfg, &HwConfig::baseline());
        println!(
            "  {:<22}: speedup {:+.1}%, regions committed {}",
            cfg.name,
            run.speedup_vs(&base),
            run.stats.commits
        );
    }
    println!();
    let compiled = compile_workload(w, &profiled, &CompilerConfig::atomic_forced_mono());
    let mut g = small(c);
    g.bench_function("ablation_partial_inline_forced_mono", |b| {
        b.iter(|| execute_compiled(w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

/// §7 post-dominance bounds-check elimination inside regions.
fn ablation_postdom_checkelim(c: &mut Criterion) {
    let w = synthetic::postdom_checks(30_000);
    let profiled = profile_workload(&w);
    let off = run_workload(
        &w,
        &profiled,
        &CompilerConfig::atomic(),
        &HwConfig::baseline(),
    );
    let mut cfg = CompilerConfig::atomic();
    cfg.postdom_checkelim = true;
    cfg.name = "atomic+postdom-ce";
    let on = run_workload(&w, &profiled, &cfg, &HwConfig::baseline());
    println!(
        "== ablation: §7 post-dominance check elimination ==\n  off: {} uops\n  on : {} uops ({:+.2}%)\n",
        off.stats.uops,
        on.stats.uops,
        (1.0 - on.stats.uops as f64 / off.stats.uops as f64) * 100.0
    );
    let compiled = compile_workload(&w, &profiled, &cfg);
    let mut g = small(c);
    g.bench_function("ablation_postdom_checkelim_on", |b| {
        b.iter(|| execute_compiled(&w, &profiled, &compiled, &HwConfig::baseline()))
    });
    g.finish();
}

/// §7 adaptive recompilation on the phase-flip stressor.
fn ablation_adaptive(c: &mut Criterion) {
    let w = synthetic::phase_flip(72_000, 60_000, 40);
    let mut profiled = profile_workload(&w);
    // First-pass profiling window: phase 2 has not happened yet.
    {
        let mut early = hasp_vm::Interp::new(&w.program).with_profiling();
        early.set_fuel(900_000);
        let _ = early.run(&[]);
        profiled.profile = early.profile;
    }
    let outcome = run_adaptive(
        &w,
        &profiled,
        &CompilerConfig::atomic(),
        &HwConfig::baseline(),
    );
    println!(
        "== ablation: §7 adaptive recompilation (phase-flip) ==\n  \
         speculative: {} cycles ({} aborts, {:.1}% of regions)\n  \
         adaptive   : {} cycles ({} aborts) — {:+.1}%\n",
        outcome.first.stats.cycles,
        outcome.first.stats.total_aborts(),
        outcome.first.stats.abort_rate() * 100.0,
        outcome.second.stats.cycles,
        outcome.second.stats.total_aborts(),
        (outcome.first.stats.cycles as f64 / outcome.second.stats.cycles as f64 - 1.0) * 100.0,
    );
    let mut g = small(c);
    g.bench_function("ablation_adaptive_recompile_cycle", |b| {
        b.iter(|| {
            run_adaptive(
                &w,
                &profiled,
                &CompilerConfig::atomic(),
                &HwConfig::baseline(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_region_size,
    ablation_cold_threshold,
    ablation_sle,
    ablation_partial_inline,
    ablation_postdom_checkelim,
    ablation_adaptive,
);
criterion_main!(ablations);
