//! The shared wall-clock measurement scaffold: one warm run per leg, then
//! best-of-`reps` with the reps interleaved round-robin across the legs.
//!
//! Host-speed drift over a benchmark's wall time (frequency scaling,
//! virtualized-CPU contention) then degrades every leg's slow reps alike
//! instead of landing wholesale on whichever leg ran last, so between-leg
//! ratios — the numbers these artifacts exist for — stay honest even when
//! absolute rates wobble. Extracted from the dispatch bench so the
//! multi-core (`mt`) harness and any future bench share one timing
//! discipline instead of growing drift-prone copies.

use std::time::Instant;

/// The scaffold's product: the untimed warm result per leg (legs' reference
/// outputs, e.g. for uop-count or checksum verification) and the best
/// timed wall seconds per leg.
#[derive(Debug)]
pub struct Interleaved<R> {
    /// One warm (untimed) result per leg, in leg order.
    pub warm: Vec<R>,
    /// Best-of-reps wall seconds per leg, in leg order.
    pub best_s: Vec<f64>,
}

/// Runs `n_legs` legs — `run(k)` executes leg `k` once — warm-first, then
/// `reps` timed rounds interleaved round-robin across the legs, keeping
/// each leg's minimum wall time. After every timed rep, `verify(k, &rep,
/// &warm)` lets the caller assert the rep reproduced the warm run (equal
/// retired uops, matching checksum, …) so a leg can never get faster by
/// doing different work.
pub fn best_of_interleaved<R>(
    reps: usize,
    n_legs: usize,
    mut run: impl FnMut(usize) -> R,
    mut verify: impl FnMut(usize, &R, &R),
) -> Interleaved<R> {
    let warm: Vec<R> = (0..n_legs).map(&mut run).collect();
    let mut best_s = vec![f64::INFINITY; n_legs];
    for _ in 0..reps {
        for (k, best) in best_s.iter_mut().enumerate() {
            let t0 = Instant::now();
            let rep = run(k);
            *best = best.min(t0.elapsed().as_secs_f64());
            verify(k, &rep, &warm[k]);
        }
    }
    Interleaved { warm, best_s }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaves_round_robin_and_keeps_minima() {
        let mut order = Vec::new();
        let out = best_of_interleaved(
            2,
            3,
            |k| {
                order.push(k);
                k * 10
            },
            |k, rep, warm| assert_eq!(rep, warm, "leg {k}"),
        );
        // Warm pass first, then two interleaved rounds.
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(out.warm, vec![0, 10, 20]);
        assert_eq!(out.best_s.len(), 3);
        assert!(out.best_s.iter().all(|s| s.is_finite()));
    }
}
