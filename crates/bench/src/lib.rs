//! # hasp-bench — the Criterion benchmark harness
//!
//! `cargo bench` regenerates every table and figure of the paper's
//! evaluation (see `benches/paper.rs`) and runs the ablation studies for
//! the design choices DESIGN.md calls out (`benches/ablations.rs`).

#![warn(missing_docs)]
