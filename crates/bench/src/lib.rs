//! # hasp-bench — the Criterion benchmark harness
//!
//! Three benches, all `cargo bench`-able individually with `--bench`:
//!
//! * `benches/paper.rs` — regenerates every table and figure of the
//!   paper's evaluation.
//! * `benches/ablations.rs` — the ablation studies for the design choices
//!   DESIGN.md calls out (region size target, cold threshold, SLE, partial
//!   inlining, §7 check elimination and adaptive recompilation).
//! * `benches/memmodel.rs` — micro-benchmarks isolating the four
//!   dynamic-access tiers of the cache model's memory fast-path ladder
//!   (absorbed filter hit, way-predictor hit, full scan hit, install —
//!   DESIGN §12/§16).
//!
//! The library itself exports [`scaffold`]: the warm-then-interleaved
//! best-of-reps timing discipline shared by the `bench-dispatch` and `mt`
//! wall-clock artifacts.

#![warn(missing_docs)]

pub mod scaffold;

pub use scaffold::{best_of_interleaved, Interleaved};
