//! # hasp — Hardware Atomicity for Reliable Software Speculation
//!
//! A from-scratch Rust reproduction of Neelakantam et al., ISCA 2007: ISA
//! primitives for atomic execution (`aregion_begin <alt>`, `aregion_end`,
//! `aregion_abort`) that let a JIT compiler speculate on hot paths with the
//! hardware providing all-or-nothing execution and recovery.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`vm`] — the Java-like virtual machine and profiling interpreter,
//! * [`ir`] — the SSA compiler IR with first-class atomic regions,
//! * [`core`] — atomic-region formation (the paper's contribution),
//! * [`opt`] — the optimization passes and the four §6 compiler configs,
//! * [`hw`] — the checkpoint-substrate machine and timing model,
//! * [`workloads`] — the DaCapo-style benchmark suite,
//! * [`experiments`] — the §5 methodology and per-figure regenerators.
//!
//! ## Example: the full pipeline in a dozen lines
//!
//! ```
//! use hasp::prelude::*;
//!
//! // 1. A workload (any program built with hasp_vm's builders works).
//! let w = hasp::workloads::synthetic::add_element(500);
//!
//! // 2. Profile with the interpreter.
//! let profiled = hasp::experiments::profile_workload(&w);
//!
//! // 3. Compile with atomic regions and execute on the Table-1 machine.
//! let run = hasp::experiments::run_workload(
//!     &w,
//!     &profiled,
//!     &CompilerConfig::atomic(),
//!     &HwConfig::baseline(),
//! );
//!
//! // Speculation committed regions and preserved semantics (the runner
//! // asserts checksum equality against the interpreter internally).
//! assert!(run.stats.commits > 0);
//! assert!(run.stats.coverage() > 0.0);
//! ```

#![warn(missing_docs)]

pub use hasp_core as core;
pub use hasp_experiments as experiments;
pub use hasp_hw as hw;
pub use hasp_ir as ir;
pub use hasp_opt as opt;
pub use hasp_vm as vm;
pub use hasp_workloads as workloads;

/// The types most users need.
pub mod prelude {
    pub use hasp_core::RegionConfig;
    pub use hasp_experiments::{profile_workload, run_workload, Suite};
    pub use hasp_hw::{HwConfig, Machine};
    pub use hasp_opt::{compile_program, CompilerConfig};
    pub use hasp_vm::{Interp, Program, ProgramBuilder};
    pub use hasp_workloads::{all_workloads, Workload};
}
